"""Determinism regression: observability output is engine-invariant.

The parallel experiment engine promises bit-identical results whether
cells run serially or fan out over worker processes.  Observability
data must keep that promise too: a fixed seed yields byte-identical
trace-span sequences and metric snapshots for ``jobs=1`` vs ``jobs=N``
runs of the same cells, and across repeated runs in one process.
"""

import json
import os

import pytest

import repro.obs as obs_mod
from repro.experiments.common import run_workload_experiment
from repro.experiments.engine import Cell, run_cells
from repro.network import make_link
from repro.obs import Observability
from repro.offload import run_inflow_experiment
from repro.platform import RattrapPlatform
from repro.sim import Environment
from repro.workloads import CHESS_GAME, VIRUS_SCAN, generate_inflow, get_profile

PROFILES = {"chess": CHESS_GAME, "scan": VIRUS_SCAN}

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def _obs_cell(profile_name: str, seed: int) -> dict:
    """One self-contained observed workload; returns the obs snapshot."""
    env = Environment()
    obs = Observability(env, tracing=True, metrics=True)
    plat = RattrapPlatform(env, optimized=True)
    plans = generate_inflow(
        PROFILES[profile_name], devices=3, requests_per_device=3, seed=seed
    )
    run_inflow_experiment(env, plat, plans, make_link("lan-wifi"))
    return obs.snapshot()


def _cells():
    return [
        Cell(
            experiment="obs-determinism",
            key=(name, seed),
            fn=_obs_cell,
            kwargs={"profile_name": name, "seed": seed},
        )
        for name in sorted(PROFILES)
        for seed in (1, 2)
    ]


def test_serial_and_parallel_snapshots_are_byte_identical():
    serial = run_cells(_cells(), jobs=1)
    parallel = run_cells(_cells(), jobs=3)
    assert len(serial) == len(parallel) == 4
    for s_snap, p_snap in zip(serial, parallel):
        assert json.dumps(s_snap, sort_keys=True) == json.dumps(
            p_snap, sort_keys=True
        )


def test_repeated_runs_are_byte_identical():
    first = json.dumps(_obs_cell("chess", seed=7), sort_keys=True)
    second = json.dumps(_obs_cell("chess", seed=7), sort_keys=True)
    assert first == second


def test_merged_worker_snapshots_match_serial_drain():
    """--trace/--metrics with --jobs N drains the same snapshots as serial.

    This drives the real auto-attach path: enable_auto, run the cells
    through the engine, drain.  Serially the environments are created
    in-process; in parallel the pool workers snapshot and pickle them
    back, and the engine absorbs in cell order.
    """
    obs_mod.enable_auto(tracing=True, metrics=True)
    try:
        run_cells(_cells(), jobs=1)
        serial = obs_mod.drain()
        run_cells(_cells(), jobs=3)
        parallel = obs_mod.drain()
    finally:
        obs_mod.disable_auto()
    assert len(serial) == len(parallel) == 4
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)


@pytest.mark.parametrize("platform", ["vm", "rattrap-wo", "rattrap"])
def test_golden_trace_sequence_is_pinned(platform):
    """The full span sequence for one seed is a regression artifact.

    Any change to request ordering, phase boundaries, or dispatcher
    wake-up order shows up here as a diff against the checked-in trace.
    """
    exp = run_workload_experiment(
        platform, get_profile("ocr"), devices=2, requests_per_device=3,
        seed=1, with_tracing=True,
    )
    rows = exp.env.obs.tracer.as_rows()
    with open(os.path.join(DATA_DIR, f"trace_{platform}_ocr_seed1.json")) as fh:
        golden = json.load(fh)
    assert rows == golden


def test_snapshot_contains_spans_and_metrics():
    snap = _obs_cell("chess", seed=1)
    assert snap["sim_now"] > 0
    assert snap["spans"], "tracing produced no spans"
    kinds = {row[0] for row in snap["spans"]}
    assert {"connect", "prepare", "upload", "execute", "collect"} <= kinds
    assert snap["metrics"]["counters"]["platform.requests"] == 9.0
    # The whole snapshot survives a JSON round-trip unchanged.
    assert json.loads(json.dumps(snap)) == snap
