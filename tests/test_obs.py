"""Tests for the repro.obs observability subsystem.

Covers the instruments (counters/gauges/histograms), the tracer, the
zero-cost disabled path, the serve-path span taxonomy (phase spans tile
a request's response time exactly), component metrics, the auto-attach
machinery behind ``rattrap-experiments --trace/--metrics``, and the
runner flags end to end.
"""

import json
import math

import pytest

from repro.network import make_link
from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    PHASE_KINDS,
    Histogram,
    MetricsRegistry,
    Observability,
    Tracer,
    disable_auto,
    drain,
    enable_auto,
    metrics_of,
    trace_span,
)
from repro.offload import run_inflow_experiment
from repro.offload.request import OffloadRequest
from repro.platform import RattrapPlatform, VMCloudPlatform
from repro.sim import Environment
from repro.workloads import CHESS_GAME, generate_inflow


# --------------------------------------------------------------- instruments
def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert reg.counter("x") is c  # get-or-create
    with pytest.raises(ValueError):
        c.inc(-1)
    g = reg.gauge("depth")
    g.set(4)
    g.set(2)
    g.add(1)
    assert g.value == 3 and g.max_value == 4


def test_histogram_percentiles_are_bucket_edges():
    h = Histogram("t", bounds=(0.1, 1.0, 10.0))
    for v in (0.05, 0.05, 0.5, 0.5, 0.5, 5.0, 5.0, 5.0, 5.0, 50.0):
        h.observe(v)
    assert h.count == 10
    assert h.quantile(0.5) == 1.0  # 5th observation lands in (0.1, 1.0]
    assert h.quantile(0.9) == 10.0  # 9th observation is in the (1, 10] bucket
    assert h.quantile(1.0) == 50.0  # overflow bucket reports the exact max
    snap = h.snapshot()
    assert snap["p99"] == 50.0
    assert snap["min"] == 0.05 and snap["max"] == 50.0
    assert sum(n for _edge, n in snap["buckets"]) == 10


def test_histogram_quantile_never_exceeds_max():
    h = Histogram("t", bounds=(1.0, 100.0))
    h.observe(1.5)
    assert h.quantile(0.5) == 1.5  # edge 100.0 clamped to the observed max


def test_histogram_empty_and_validation():
    h = Histogram("t")
    assert math.isnan(h.quantile(0.5))
    assert h.snapshot() == {"count": 0}
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        h.quantile(0.0)


def test_registry_snapshot_is_sorted_and_json_ready():
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.counter("a").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h", bounds=DEFAULT_COUNT_BUCKETS).observe(3)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    json.dumps(snap)  # must serialize without custom encoders
    assert reg.counters_with_prefix("a") == {"a": 2.0}


# -------------------------------------------------------------------- tracer
def test_tracer_spans_and_aggregation():
    env = Environment()
    tracer = Tracer(env)

    def proc(env):
        with tracer.span("execute", who="c1", trace="t1"):
            yield env.timeout(2.0)
        with tracer.span("upload", trace="t2"):
            yield env.timeout(0.5)

    env.run(until=env.process(proc(env)))
    assert len(tracer) == 2
    agg = tracer.by_kind()
    assert agg["execute"] == {"count": 1, "total_s": 2.0}
    assert agg["upload"]["total_s"] == 0.5
    rows = tracer.as_rows()
    assert rows[0] == ["execute", "c1", "t1", 0.0, 2.0]


def test_open_spans_are_excluded_until_finished():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.begin("boot", who="c9")
    assert span.open and math.isnan(span.duration)
    assert tracer.by_kind() == {}
    tracer.finish(span)
    tracer.finish(span)  # idempotent
    assert tracer.by_kind()["boot"]["count"] == 1


def test_span_closes_on_exception():
    env = Environment()
    tracer = Tracer(env)

    def proc(env):
        with tracer.span("execute"):
            yield env.timeout(1.0)
            raise RuntimeError("sliced")

    with pytest.raises(RuntimeError):
        env.run(until=env.process(proc(env)))
    assert not tracer.spans[0].open
    assert tracer.spans[0].duration == 1.0


# --------------------------------------------------------- zero-cost default
def test_environment_has_no_obs_by_default():
    env = Environment()
    assert env.obs is None
    assert metrics_of(env) is None
    assert Environment.obs_factory is None


def test_trace_span_disabled_is_shared_noop():
    env = Environment()
    cm1 = trace_span(env, "execute")
    cm2 = trace_span(env, "upload", who="x")
    assert cm1 is cm2  # one shared instance: no allocation per call
    with cm1:
        pass


def test_observability_installs_on_env():
    env = Environment()
    obs = Observability(env, tracing=True, metrics=False)
    assert env.obs is obs
    assert obs.metrics is None
    snap = obs.snapshot()
    assert snap["metrics"] is None and snap["spans"] == []


# ----------------------------------------------------------- serve-path spans
def _serve_one(platform_cls, **kw):
    env = Environment()
    obs = Observability(env)
    plat = platform_cls(env, **kw)
    req = OffloadRequest(request_id=0, device_id="d0", app_id="chess",
                         profile=CHESS_GAME)
    result = env.run(until=plat.submit(req, make_link("lan-wifi")))
    return obs, result


def test_phase_spans_tile_response_time_rattrap():
    obs, result = _serve_one(RattrapPlatform, optimized=True)
    assert obs.tracer.phase_total_s() == pytest.approx(
        result.response_time, rel=1e-9
    )
    kinds = {s.kind for s in obs.tracer.spans}
    # "cache_hit" only replaces "execute" when a compute cache serves
    # the result; "decide"/"local_exec" only appear on the partitioned
    # client path.  An uncached direct serve emits every other kind.
    for kind in PHASE_KINDS:
        if kind in ("cache_hit", "decide", "local_exec"):
            assert kind not in kinds
            continue
        assert kind in kinds, f"missing phase span {kind!r}"
    assert "queued" in kinds and "boot" in kinds and "stage" in kinds


def test_phase_spans_tile_response_time_vm():
    obs, result = _serve_one(VMCloudPlatform)
    assert obs.tracer.phase_total_s() == pytest.approx(
        result.response_time, rel=1e-9
    )


def test_spans_carry_the_request_trace_id():
    obs, result = _serve_one(RattrapPlatform, optimized=True)
    trace_id = result.request.trace_id
    assert trace_id == "d0/chess/0"
    phase_spans = [s for s in obs.tracer.spans if s.kind in PHASE_KINDS]
    assert phase_spans and all(s.trace == trace_id for s in phase_spans)
    # Detail spans nest inside their phase: queued within prepare.
    prepare = next(s for s in obs.tracer.spans if s.kind == "prepare")
    queued = next(s for s in obs.tracer.spans if s.kind == "queued")
    assert prepare.start <= queued.start and queued.end <= prepare.end


def test_trace_id_can_be_supplied_explicitly():
    req = OffloadRequest(request_id=3, device_id="d1", app_id="ocr",
                         profile=CHESS_GAME, trace_id="custom-id")
    assert req.trace_id == "custom-id"


# ---------------------------------------------------------- component metrics
def test_platform_metrics_after_inflow():
    env = Environment()
    obs = Observability(env)
    plat = RattrapPlatform(env, optimized=True)
    plans = generate_inflow(CHESS_GAME, devices=2, requests_per_device=3, seed=1)
    results = run_inflow_experiment(env, plat, plans, make_link("lan-wifi"))
    m = obs.metrics
    assert m.counter("platform.requests").value == len(results) == 6
    assert m.counter("dispatch.cold_boots").value == 2  # one per device
    assert m.counter("dispatch.warm_dispatches").value == 4
    assert m.counter("runtime.boots").value == 2
    assert m.counter("platform.code_cache_hits").value == 5  # all but first
    assert m.counter("warehouse.lookups").value >= 5
    assert m.counter("warehouse.stores").value == 1
    assert m.counter("io.staged_bytes").value > 0
    assert m.counter("io.burned_bytes").value == m.counter("io.staged_bytes").value
    hist = m.histogram("platform.response_s")
    assert hist.count == 6
    assert hist.quantile(0.99) >= hist.quantile(0.5)
    assert m.counter("link.bytes_up").value > m.counter("link.bytes_down").value
    assert m.gauge("scheduler.active_requests").value == 0
    assert m.gauge("scheduler.active_requests").max_value >= 1
    assert m.gauge("dispatch.pending_boots").value == 0


def test_request_failure_counter():
    env = Environment()
    obs = Observability(env)
    plat = RattrapPlatform(env, optimized=True)
    req = OffloadRequest(request_id=0, device_id="d0", app_id="chess",
                         profile=CHESS_GAME)
    proc = plat.submit(req, make_link("lan-wifi"))
    proc.defused = True

    def saboteur(env):
        while not plat._inflight:  # wait until the request is being served
            yield env.timeout(0.05)
        assert plat.crash_runtime("cid-1", reason="test")

    env.run(until=env.process(saboteur(env)))
    env.run()
    assert obs.metrics.counter("platform.request_failures").value == 1
    assert obs.metrics.counter("runtime.crashes").value == 1
    # The severed request's spans are all closed (death is visible).
    assert all(not s.open for s in obs.tracer.spans)


# --------------------------------------------------------------- auto-attach
def test_enable_auto_attaches_and_drains():
    try:
        enable_auto(tracing=True, metrics=True)
        env = Environment()
        assert env.obs is not None
        with trace_span(env, "execute"):
            pass
        env.obs.metrics.counter("x").inc()
        snaps = drain()
        assert len(snaps) == 1
        assert snaps[0]["metrics"]["counters"] == {"x": 1.0}
        assert [row[0] for row in snaps[0]["spans"]] == ["execute"]
        assert drain() == []  # drained instances are forgotten
    finally:
        disable_auto()
    assert Environment().obs is None


def test_runner_trace_flag_writes_obs_json(tmp_path, capsys):
    from repro.experiments.runner import main

    rc = main(["fig1", "--trace", "--metrics", "--obs-dir", str(tmp_path)])
    assert rc == 0
    assert Environment.obs_factory is None  # cleaned up afterwards
    path = tmp_path / "fig1.obs.json"
    assert path.exists()
    snaps = json.loads(path.read_text())
    assert isinstance(snaps, list) and snaps
    assert any(s["spans"] for s in snaps)
    assert any(
        s["metrics"] and s["metrics"]["counters"].get("platform.requests")
        for s in snaps
    )
    assert "[obs written to" in capsys.readouterr().out


def test_runner_obs_parallel_jobs_still_dump(tmp_path):
    """--jobs N no longer forces serial: worker snapshots are absorbed."""
    from repro.experiments.runner import main

    rc = main(["table1", "--jobs", "4", "--metrics", "--obs-dir", str(tmp_path)])
    assert rc == 0
    assert Environment.obs_factory is None
    snaps = json.loads((tmp_path / "table1.obs.json").read_text())
    assert isinstance(snaps, list) and snaps
    assert all(s["spans"] is None for s in snaps)  # tracing was off
    # table1's cells boot one runtime each; the counters crossed the
    # process boundary intact.
    assert any(
        s["metrics"] and s["metrics"]["counters"].get("runtime.boots")
        for s in snaps
    )
