"""Cluster failure-awareness tests: the circuit breaker, failover
routing, the hardened collect wrapper, and seeded chaos determinism."""

import pytest

from repro.experiments.chaos import SCENARIOS, _chaos_cell
from repro.network import make_link
from repro.offload import OffloadRequest, run_inflow_experiment
from repro.platform import ClusterPlatform, NodeHealth
from repro.sim import Environment, Interrupt
from repro.workloads import CHESS_GAME, LINPACK, generate_inflow


# ------------------------------------------------------------ circuit breaker
def test_node_health_validation():
    with pytest.raises(ValueError):
        NodeHealth(threshold=0)
    with pytest.raises(ValueError):
        NodeHealth(reset_timeout_s=0.0)


def test_breaker_trips_at_threshold_and_resets():
    health = NodeHealth(threshold=2, reset_timeout_s=10.0)
    assert health.available(0.0)
    health.record_failure(1.0)
    assert health.available(1.0)  # one failure is not a trip
    health.record_failure(2.0)
    assert not health.available(5.0)
    assert health.trips == 1
    assert health.failures == 2
    # The breaker half-opens after the reset window.
    assert health.available(12.0)
    # A success in between closes the failure streak.
    health.record_failure(13.0)
    health.record_success()
    health.record_failure(14.0)
    assert health.available(14.0)


def test_breaker_open_diverts_sticky_traffic():
    env = Environment()
    cluster = ClusterPlatform(
        env, servers=2, breaker_threshold=1, breaker_reset_s=100.0
    )
    request = OffloadRequest(0, "device-0", "chess", CHESS_GAME)
    home = cluster._route_index(request)
    cluster.health[home].record_failure(env.now)
    assert cluster._route_index(request) != home
    assert cluster.failovers == 1


# ------------------------------------------------------------------ failover
def test_sticky_failover_rehashes_and_sticks():
    env = Environment()
    cluster = ClusterPlatform(env, servers=3)
    request = OffloadRequest(0, "device-0", "chess", CHESS_GAME)
    home = cluster._route_index(request)
    cluster.nodes[home].fail_node()
    moved = cluster._route_index(request)
    assert moved != home
    assert cluster.failovers == 1
    # The device stays on its new node even after the home node heals —
    # its warm state now lives there.
    cluster.nodes[home].restore_node()
    assert cluster._route_index(request) == moved
    assert cluster.failovers == 1


def test_whole_fleet_dark_falls_back_to_home():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    request = OffloadRequest(0, "device-0", "chess", CHESS_GAME)
    home = cluster._route_index(request)
    for node in cluster.nodes:
        node.fail_node()
    # Nowhere to go: keep the sticky home so the request fails fast
    # and the client's retry policy takes over.
    assert cluster._route_index(request) == home


def test_least_loaded_avoids_offline_node():
    env = Environment()
    cluster = ClusterPlatform(env, servers=3, policy="least-loaded")
    cluster.nodes[0].fail_node()
    for i in range(6):
        request = OffloadRequest(i, f"device-{i}", "chess", CHESS_GAME)
        assert cluster._route_index(request) != 0


def test_node_loads_matches_collected_results():
    env = Environment()
    cluster = ClusterPlatform(env, servers=3)
    plans = generate_inflow(LINPACK, devices=6, requests_per_device=2, seed=1)
    results = run_inflow_experiment(env, cluster, plans, make_link("lan-wifi"))
    assert sum(cluster.node_loads()) == len(results) == len(cluster.completed())


# ------------------------------------------------------- hardened collect
def test_interrupted_collect_orphans_node_work_quietly():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    request = OffloadRequest(0, "device-0", "chess", CHESS_GAME)
    idx = cluster._route_index(request)
    wrapper = cluster.submit(request, make_link("lan-wifi"))
    wrapper.defused = True

    def killer(env):
        yield env.timeout(0.5)
        wrapper.interrupt("client gone")

    env.process(killer(env))
    env.run()
    assert isinstance(wrapper.exception, Interrupt)
    # The abandonment is not a node failure: the breaker saw nothing,
    # and the cluster collected no result ...
    assert all(h.failures == 0 for h in cluster.health)
    assert cluster.node_loads() == [0, 0]
    assert cluster.results == []
    # ... but the node finished the orphaned request on its own.
    assert len(cluster.nodes[idx].completed()) == 1


def test_node_death_mid_request_feeds_the_breaker():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    request = OffloadRequest(0, "device-0", "chess", CHESS_GAME)
    idx = cluster._route_index(request)
    wrapper = cluster.submit(request, make_link("lan-wifi"))
    wrapper.defused = True

    def killer(env):
        yield env.timeout(3.0)  # boot done (1.75 s), request executing
        cluster.nodes[idx].fail_node()

    env.process(killer(env))
    env.run()
    assert isinstance(wrapper.exception, Interrupt)
    assert cluster.health[idx].failures == 1
    assert cluster.node_loads() == [0, 0]


def test_health_monitor_holds_breaker_open_while_offline():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    cluster.start_health_monitor(check_interval_s=1.0)
    with pytest.raises(ValueError):
        cluster.start_health_monitor(check_interval_s=0.0)
    cluster.nodes[0].fail_node()
    env.run(until=env.timeout(3.0))
    assert not cluster._available(0)
    cluster.nodes[0].restore_node()
    # One more probe interval and the hold expires on its own.
    env.run(until=env.timeout(3.0))
    assert cluster._available(0)


# ------------------------------------------------------------------ chaos
def test_chaos_cells_are_deterministic():
    # Byte-determinism of the whole recovery pipeline under a fixed
    # seed: inflow, victim picks, backoff jitter, failover routing.
    for scenario in ("runtime-crashes", "node-outage"):
        assert _chaos_cell(scenario, seed=2) == _chaos_cell(scenario, seed=2)


def test_chaos_node_outage_meets_availability_target():
    metrics = _chaos_cell("node-outage", seed=1)
    assert metrics["availability"] >= 0.99
    assert metrics["failovers"] >= 1
    assert metrics["faults_injected"] == 1


def test_chaos_baseline_is_fault_free():
    metrics = _chaos_cell("baseline", seed=1)
    assert metrics["availability"] == 1.0
    assert metrics["mean_attempts"] == 1.0
    assert metrics["faults_injected"] == 0
    assert metrics["failovers"] == 0


def test_chaos_scenarios_cover_every_fault_kind():
    from repro.faults import FAULT_KINDS

    assert len(SCENARIOS) == len(FAULT_KINDS) + 1  # every kind + control
    for kind in FAULT_KINDS:
        assert any(scenario.startswith(kind) for scenario in SCENARIOS)
