"""Dedicated coverage for the Request-based Access Controller.

The paper's semantics (one analysis per app, shared permission table,
permanent block at the violation threshold) plus the graduated
enforcement extensions: violation decay windows, finite blocks with
geometric escalation, the post-block admission throttle, per-app
thresholds, and cluster blocklist sync.
"""

import math

import pytest

from repro.platform import RattrapPlatform
from repro.platform.access import (
    FORBIDDEN_OPERATIONS,
    KNOWN_PERMISSIONS,
    RequestAccessController,
)
from repro.platform.cluster import ClusterPlatform
from repro.sim import Environment


# ---------------------------------------------------------------- paper rules
def test_one_analysis_per_app_shared_table():
    ac = RequestAccessController()
    assert ac.analysis_needed("app")
    assert ac.admit("app").allowed
    assert not ac.analysis_needed("app")
    assert ac.admit("app").allowed
    assert ac.analyses == 1
    table = ac.table_for("app")
    assert table is not None and table.app_id == "app"


def test_grants_intersect_known_permissions():
    ac = RequestAccessController()
    ac.admit("app", requested_permissions=frozenset({"cpu.execute", "not.a.permission"}))
    table = ac.table_for("app")
    assert table.granted == {"cpu.execute"}
    assert table.granted <= KNOWN_PERMISSIONS


def test_filter_requires_admission_first():
    ac = RequestAccessController()
    with pytest.raises(KeyError):
        ac.filter_operation("ghost", "cpu.execute")


def test_forbidden_and_ungranted_operations_denied():
    ac = RequestAccessController(violation_threshold=100)
    ac.admit("app", requested_permissions=frozenset({"cpu.execute"}))
    for op in sorted(FORBIDDEN_OPERATIONS):
        assert not ac.filter_operation("app", op).allowed
    # granted op passes, ungranted-but-known op is a violation
    assert ac.filter_operation("app", "cpu.execute").allowed
    assert not ac.filter_operation("app", "net.outbound").allowed
    assert ac.table_for("app").violations == len(FORBIDDEN_OPERATIONS) + 1


def test_permanent_block_at_threshold_default():
    ac = RequestAccessController(violation_threshold=2)
    ac.admit("mal")
    ac.filter_operation("mal", "devns.escape")
    decision = ac.filter_operation("mal", "devns.escape")
    assert not decision.allowed and "blocked after 2 violations" in decision.reason
    assert ac.is_blocked("mal")
    assert ac.table_for("mal").blocked_until == math.inf
    # paper's one-way semantics: still blocked arbitrarily far out
    assert ac.is_blocked("mal", now=1e9)
    assert not ac.admit("mal", now=1e9).allowed
    assert ac.blocked_apps() == ["mal"]


def test_per_app_threshold_overrides_global():
    ac = RequestAccessController(
        violation_threshold=5, per_app_thresholds={"strict": 1}
    )
    ac.admit("strict")
    ac.admit("lax")
    assert ac.threshold_for("strict") == 1
    assert ac.threshold_for("lax") == 5
    ac.filter_operation("strict", "devns.escape")
    ac.filter_operation("lax", "devns.escape")
    assert ac.is_blocked("strict")
    assert not ac.is_blocked("lax")


def test_set_threshold_validation():
    ac = RequestAccessController()
    with pytest.raises(ValueError):
        ac.set_threshold("app", 0)
    with pytest.raises(ValueError):
        RequestAccessController(violation_threshold=0)
    with pytest.raises(ValueError):
        RequestAccessController(decay_window_s=0.0)
    with pytest.raises(ValueError):
        RequestAccessController(block_s=-1.0)
    with pytest.raises(ValueError):
        RequestAccessController(block_escalation=0.5)
    with pytest.raises(ValueError):
        RequestAccessController(throttle_penalty_s=-0.1)
    with pytest.raises(ValueError):
        RequestAccessController(filter_cost_s=-0.1)


# ------------------------------------------------------------ decay + windows
def test_violation_decay_window_forgives_old_violations():
    ac = RequestAccessController(violation_threshold=3, decay_window_s=10.0)
    ac.admit("spiky")
    ac.filter_operation("spiky", "devns.escape", now=0.0)
    ac.filter_operation("spiky", "devns.escape", now=1.0)
    # 20s later the first two violations decayed; this is 1-of-3 again
    decision = ac.filter_operation("spiky", "devns.escape", now=21.0)
    assert not decision.allowed and not ac.is_blocked("spiky", now=21.0)
    assert ac.table_for("spiky").violations == 1


def test_sustained_violations_still_block_under_decay():
    ac = RequestAccessController(violation_threshold=3, decay_window_s=10.0)
    ac.admit("mal")
    for t in (0.0, 1.0, 2.0):
        ac.filter_operation("mal", "devns.escape", now=t)
    assert ac.is_blocked("mal", now=2.0)


def test_finite_block_window_expires_and_escalates():
    ac = RequestAccessController(
        violation_threshold=1, block_s=10.0, block_escalation=2.0
    )
    ac.admit("mal")
    ac.filter_operation("mal", "devns.escape", now=0.0)
    assert ac.is_blocked("mal", now=5.0)
    assert not ac.is_blocked("mal", now=10.0)  # first window: 10s
    # repeat offense: window doubles (offenses=2 -> 20s)
    ac.filter_operation("mal", "devns.escape", now=11.0)
    assert ac.table_for("mal").offenses == 2
    assert ac.is_blocked("mal", now=30.0)
    assert not ac.is_blocked("mal", now=31.0)


def test_served_window_wipes_violation_slate():
    ac = RequestAccessController(violation_threshold=2, block_s=5.0)
    ac.admit("mal")
    ac.filter_operation("mal", "devns.escape", now=0.0)
    ac.filter_operation("mal", "devns.escape", now=0.0)
    assert ac.is_blocked("mal", now=1.0)
    # after the window one violation is not enough to re-block
    decision = ac.filter_operation("mal", "devns.escape", now=6.0)
    assert not decision.allowed
    assert not ac.is_blocked("mal", now=6.0)


# --------------------------------------------------------------- throttling
def test_throttle_penalty_after_served_block():
    ac = RequestAccessController(
        violation_threshold=1, block_s=5.0, throttle_penalty_s=0.5
    )
    ac.admit("mal", now=0.0)
    assert ac.admission_penalty_s("mal", now=0.0) == 0.0
    ac.filter_operation("mal", "devns.escape", now=0.0)
    assert ac.state_of("mal", now=1.0) == "blocked"
    assert ac.admission_penalty_s("mal", now=1.0) == 0.0  # blocked, not throttled
    assert ac.state_of("mal", now=6.0) == "throttled"
    assert ac.admission_penalty_s("mal", now=6.0) == pytest.approx(0.5)
    # second served offense doubles the probation penalty
    ac.filter_operation("mal", "devns.escape", now=7.0)
    assert ac.admission_penalty_s("mal", now=100.0) == pytest.approx(1.0)


def test_unblock_resets_everything():
    ac = RequestAccessController(violation_threshold=1, throttle_penalty_s=0.5)
    ac.admit("mal")
    ac.filter_operation("mal", "devns.escape")
    assert ac.is_blocked("mal")
    ac.unblock("mal")
    assert not ac.is_blocked("mal")
    table = ac.table_for("mal")
    assert table.offenses == 0 and table.violations == 0
    assert ac.state_of("mal") == "ok"
    assert ac.admit("mal").allowed


def test_blocked_app_filter_denies_without_recording():
    ac = RequestAccessController(violation_threshold=1)
    ac.admit("mal")
    ac.filter_operation("mal", "devns.escape")
    before = ac.table_for("mal").violations
    decision = ac.filter_operation("mal", "devns.escape")
    assert not decision.allowed and decision.reason == "app is blocked"
    assert ac.table_for("mal").violations == before


# ---------------------------------------------------------- cluster sync
def test_import_block_creates_table_and_never_shrinks():
    ac = RequestAccessController(block_s=10.0)
    ac.import_block("alien", now=0.0, blocked_until=50.0)
    assert ac.is_blocked("alien", now=49.0)
    assert ac.table_for("alien").granted == frozenset()
    # a shorter imported window must not shrink the existing one
    ac.import_block("alien", now=0.0, blocked_until=20.0)
    assert ac.table_for("alien").blocked_until == 50.0
    # default window derives from block_s (or permanent without one)
    ac2 = RequestAccessController()
    ac2.import_block("alien", now=5.0)
    assert ac2.table_for("alien").blocked_until == math.inf


def test_cluster_blocklist_sync_propagates_blocks():
    env = Environment()
    cluster = ClusterPlatform(
        env,
        servers=3,
        platform_factory=lambda e: RattrapPlatform(
            e,
            access_controller=RequestAccessController(
                violation_threshold=1, block_s=100.0
            ),
        ),
    )
    first = cluster.nodes[0].access
    first.admit("mal", now=0.0)
    first.filter_operation("mal", "devns.escape", now=0.0)
    assert first.is_blocked("mal", now=0.0)
    assert not cluster.nodes[1].access.is_blocked("mal", now=0.0)
    blocked = cluster.sync_blocklists(now=0.0)
    assert blocked == ["mal"]
    for node in cluster.nodes:
        assert node.access.is_blocked("mal", now=0.0)
        assert not node.access.is_blocked("mal", now=200.0)


def test_background_blocklist_sync_process():
    env = Environment()
    cluster = ClusterPlatform(
        env,
        servers=2,
        platform_factory=lambda e: RattrapPlatform(
            e,
            access_controller=RequestAccessController(violation_threshold=1),
        ),
    )
    with pytest.raises(ValueError):
        cluster.start_blocklist_sync(interval_s=0.0)
    cluster.start_blocklist_sync(interval_s=1.0)
    node = cluster.nodes[0].access
    node.admit("mal", now=0.0)
    node.filter_operation("mal", "devns.escape", now=0.0)
    env.run(until=2.5)
    assert cluster.nodes[1].access.is_blocked("mal", now=env.now)
