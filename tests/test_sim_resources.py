"""Unit tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.sim import (
    Container,
    Environment,
    PriorityResource,
    Resource,
    Store,
)


# ---------------------------------------------------------------- Resource
def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def worker(env, i):
        with res.request() as req:
            yield req
            starts.append((env.now, i))
            yield env.timeout(10)

    for i in range(3):
        env.process(worker(env, i))
    env.run(until=1.0)
    assert [i for _, i in starts] == [0, 1]
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_fifo_queueing():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, i):
        with res.request() as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    for i in range(5):
        env.process(worker(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]
    assert env.now == 5.0


def test_resource_release_wakes_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def worker(env):
        with res.request() as req:
            yield req
            times.append(env.now)
            yield env.timeout(3)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    assert times == [0.0, 3.0]


def test_resource_context_manager_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def failing(env):
        with res.request() as req:
            yield req
            raise RuntimeError("boom")

    def follower(env):
        with res.request() as req:
            yield req
            return env.now

    p1 = env.process(failing(env))
    p1.defused = True
    p2 = env.process(follower(env))
    assert env.run(until=p2) == 0.0
    assert res.count == 0


def test_resource_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        result = yield env.any_of([req, env.timeout(2)])
        if req not in result:
            req.cancel()
            return "gave up"
        return "got it"  # pragma: no cover

    env.process(holder(env))
    p = env.process(impatient(env))
    assert env.run(until=p) == "gave up"
    assert res.queue_length == 0


# ------------------------------------------------------- PriorityResource
def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(5)

    env.process(worker(env, "first", 0, 0.0))
    env.process(worker(env, "low", 10, 1.0))
    env.process(worker(env, "high", 1, 2.0))
    env.run()
    assert order == ["first", "high", "low"]


def test_priority_ties_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, name):
        with res.request(priority=5) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in ("a", "b", "c"):
        env.process(worker(env, name))
    env.run()
    assert order == ["a", "b", "c"]


# -------------------------------------------------------------- Container
def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)
    c = Container(env, capacity=10, init=5)
    with pytest.raises(ValueError):
        c.put(0)
    with pytest.raises(ValueError):
        c.get(-1)


def test_container_put_get_levels():
    env = Environment()
    c = Container(env, capacity=100, init=50)

    def proc(env):
        yield c.get(30)
        assert c.level == 20
        yield c.put(60)
        assert c.level == 80
        return c.free

    assert env.run(until=env.process(proc(env))) == 20


def test_container_get_blocks_until_available():
    env = Environment()
    c = Container(env, capacity=100, init=0)
    got_at = []

    def consumer(env):
        yield c.get(10)
        got_at.append(env.now)

    def producer(env):
        yield env.timeout(4)
        yield c.put(10)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got_at == [4.0]


def test_container_put_blocks_when_full():
    env = Environment()
    c = Container(env, capacity=10, init=10)
    done_at = []

    def producer(env):
        yield c.put(5)
        done_at.append(env.now)

    def consumer(env):
        yield env.timeout(2)
        yield c.get(5)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done_at == [2.0]


# ------------------------------------------------------------------ Store
def test_store_fifo():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for item in ("x", "y", "z"):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == ["x", "y", "z"]


def test_store_get_blocks_on_empty():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(7)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(7.0, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer(env):
        yield store.put(1)
        yield store.put(2)
        done.append(env.now)

    def consumer(env):
        yield env.timeout(3)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done == [3.0]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        yield store.put({"app": "ocr"})
        yield store.put({"app": "chess"})

    def consumer(env):
        item = yield store.get(filter=lambda it: it["app"] == "chess")
        out.append(item["app"])
        item = yield store.get()
        out.append(item["app"])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == ["chess", "ocr"]


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
