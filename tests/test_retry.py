"""Retry-policy and retrying-client tests: backoff determinism, the
retryable-failure taxonomy, crash recovery, and local fallback after
exhaustion."""

import pytest

from repro.faults import (
    CodeUploadAborted,
    FaultPlan,
    FaultInjector,
    LinkBlackout,
    NodeDown,
    RuntimeCrashed,
)
from repro.hostos import OutOfMemoryError
from repro.network import make_link
from repro.offload import (
    MobileDevice,
    RetryPolicy,
    is_retryable,
    replay_with_retry,
)
from repro.offload.request import OffloadRequest
from repro.platform import RattrapPlatform
from repro.runtime.base import RuntimeState
from repro.sim import Environment, Interrupt
from repro.sim.rng import RandomStreams
from repro.workloads import CHESS_GAME, generate_inflow


# ---------------------------------------------------------------- the policy
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_delay_s=0.1, base_delay_s=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy().delay_s(0)


def test_backoff_doubles_then_caps_without_jitter():
    policy = RetryPolicy(jitter=0.0)
    delays = [policy.delay_s(n) for n in range(1, 7)]
    assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0]


def test_backoff_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(jitter=0.1)

    def schedule(seed):
        rng = RandomStreams(seed).get("client.retry")
        return [policy.delay_s(n, rng) for n in range(1, 6)]

    # Same seed, same exact schedule — chaos runs are replayable.
    assert schedule(7) == schedule(7)
    # A different seed jitters differently.
    assert schedule(7) != schedule(8)
    # Jitter stays within its band around the deterministic backoff.
    for jittered, base in zip(schedule(7), [0.5, 1.0, 2.0, 4.0, 8.0]):
        assert base * 0.9 <= jittered <= base * 1.1


def test_is_retryable_taxonomy():
    # Exactly the injected-fault taxonomy retries, bare or wrapped in
    # the Interrupt that severed an in-flight request.
    assert is_retryable(RuntimeCrashed("cac-0", "injected"))
    assert is_retryable(NodeDown("rattrap", "outage"))
    assert is_retryable(LinkBlackout("device-0"))
    assert is_retryable(CodeUploadAborted("chess"))
    assert is_retryable(Interrupt(RuntimeCrashed("cac-0", "injected")))
    # Everything else still fails loudly.
    assert not is_retryable(Interrupt("client disconnected"))
    assert not is_retryable(ValueError("model bug"))
    assert not is_retryable(OutOfMemoryError("16384 MB exhausted"))


# ------------------------------------------------------------- the client
def test_retry_client_recovers_from_runtime_crash():
    env = Environment()
    platform = RattrapPlatform(env)
    plans = generate_inflow(
        CHESS_GAME, devices=1, requests_per_device=3, think_time_s=1.0, seed=0
    )
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}

    def killer(env):
        yield env.timeout(3.0)  # first request mid-execution
        [record] = [
            r
            for r in platform.db.all_records()
            if r.runtime.state is RuntimeState.READY
        ]
        platform.crash_runtime(record.cid)

    env.process(killer(env))
    proc = env.process(replay_with_retry(env, platform, plans, devices, seed=0))
    results = env.run(until=proc)
    assert len(results) == 3
    # Nothing fell back to the handset: the re-boot served the retry.
    assert not any(r.executed_locally for r in results)
    assert results[0].attempts == 2
    # Honest timing: the failed attempt and backoff count against the
    # request, so it started at submission, not at the retry.
    assert results[0].started_at == pytest.approx(plans[0].gap_s)
    assert results[0].finished_at > 3.0
    assert platform.scheduler.active_requests == 0


def test_retry_exhaustion_falls_back_to_local():
    env = Environment()
    platform = RattrapPlatform(env)
    platform.fail_node("permanent outage")
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    policy = RetryPolicy(max_attempts=3, jitter=0.0)
    proc = env.process(
        replay_with_retry(env, platform, plans, devices, policy=policy, seed=0)
    )
    [result] = env.run(until=proc)
    # The user still got an answer — locally, after burning every attempt.
    assert result.executed_locally
    assert result.attempts == 3
    assert devices["device-0"].local_executions == 1
    # Two backoffs (0.5 s + 1.0 s) plus the local run are in the timing.
    expected = plans[0].gap_s + 0.5 + 1.0 + CHESS_GAME.local_time_s
    assert result.finished_at == pytest.approx(expected)


def test_retry_client_skips_cloud_during_blackout():
    env = Environment()
    platform = RattrapPlatform(env)
    # Device dark from before its first request until after the policy
    # would have exhausted its attempts: no submission ever leaves.
    plan = FaultPlan.link_blackout("device-0", at_s=0.0, duration_s=60.0)
    FaultInjector(env, plan).attach(platform)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    policy = RetryPolicy(max_attempts=2, jitter=0.0)
    proc = env.process(
        replay_with_retry(env, platform, plans, devices, policy=policy, seed=0)
    )
    [result] = env.run(until=proc)
    assert result.executed_locally
    assert result.attempts == 2
    # The cloud never saw the request — no boot was even attempted.
    assert platform.dispatcher.cold_boots == 0
    assert len(platform.results) == 0


class _BuggyPlatform:
    """Stub platform whose every request dies with a non-fault bug."""

    def __init__(self, env):
        self.env = env

    def submit(self, request, link):
        """Return a process that fails with a plain ValueError."""

        def boom(env):
            yield env.timeout(0.01)
            raise ValueError("model bug")

        return self.env.process(boom(self.env))


def test_retry_does_not_mask_real_bugs():
    env = Environment()
    platform = _BuggyPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    proc = env.process(replay_with_retry(env, platform, plans, devices, seed=0))
    proc.defused = True
    env.run()
    assert isinstance(proc.exception, ValueError)


def test_result_attempts_defaults_to_one():
    env = Environment()
    platform = RattrapPlatform(env)
    r = env.run(
        until=platform.submit(
            OffloadRequest(0, "d0", "chess", CHESS_GAME), make_link("lan-wifi")
        )
    )
    assert r.attempts == 1
