"""Property tests for the scatter-gather + idle-skip sync engine.

The claim under test (docs/PERFORMANCE.md "Megascale"): the optimized
epoch loop — batched inject, idle-epoch skipping, and (on the parallel
path) scatter-gather worker exchange — produces summaries
byte-identical to the plain PR 6-style reference loop, across random
topologies, zone→shard packings, sync windows, message delays, echo
depths, and non-uniform shard start clocks.

The reference loop below is deliberately naive: one round per grid
epoch, no skipping, sequential inject/advance/drain in shard order.
It shares the multiplicative epoch grid with the production loop so
both compute bit-identical boundary floats (an accumulated ``t +=
window`` drifts for non-representable windows, which would be a float
artifact, not a sync-engine difference).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.shard import ShardRunner, _route, run_epochs, run_sharded

LOOKAHEAD = 1.0
HORIZON = 30.0
ECHO_DELAY = LOOKAHEAD + 0.25


def reference_epochs(shards, owner, window, until):
    """The PR 6 loop: every grid round executed, no skipping."""
    inboxes = {}
    t0 = min(s.env.now for s in shards)
    t = t0
    k = 0
    while t < until:
        k += 1
        t_next = min(t0 + k * window, until)
        mail = []
        for idx, shard in enumerate(shards):
            shard.inject(inboxes.get(idx, ()))
            shard.advance_to(t_next)
            mail.extend(shard.drain_outbox())
        inboxes = _route(mail, owner)
        t = t_next
    assert not any(inboxes.values())


def _build_shard(spec):
    """One shard hosting ``spec['zones']``; every zone logs receipts
    and echoes messages back to their sender while hops remain."""
    env = Environment(initial_time=spec["clock"])
    runner = ShardRunner(spec["shard"], env, lookahead=LOOKAHEAD)
    runner.log = []
    zones = set(spec["zones"])

    def handler(msg):
        runner.log.append((env.now, msg.dst, msg.src, msg.payload))
        value, hops = msg.payload
        if hops > 0:
            runner.post(msg.dst, msg.src, "msg", (value, hops - 1),
                        delay=ECHO_DELAY)

    runner.on("msg", handler)
    for zone, sends in spec["sends"]:
        assert zone in zones
        for t, extra, dst, value, hops in sends:
            env.defer(
                lambda _z=zone, _d=dst, _v=value, _h=hops, _e=extra: runner.post(
                    _z, _d, "msg", (_v, _h), delay=LOOKAHEAD + _e
                ),
                t,
            )
    return runner


def _finalize(runner):
    return {
        "shard": runner.shard_id,
        "log": tuple(runner.log),
        "delivered": runner.delivered,
        "events": runner.env.event_count,
        "now": runner.env.now,
    }


@st.composite
def topologies(draw):
    """(specs, owner, window): a random sharded world."""
    n_zones = draw(st.integers(min_value=2, max_value=4))
    packing = draw(
        st.lists(
            st.integers(min_value=0, max_value=2),
            min_size=n_zones,
            max_size=n_zones,
        )
    )
    # normalize shard ids to consecutive ints in first-seen order
    ids = {}
    for s in packing:
        ids.setdefault(s, len(ids))
    owner = {z: ids[s] for z, s in enumerate(packing)}
    delay = st.floats(min_value=0.0, max_value=2.0,
                      allow_nan=False, allow_infinity=False)
    send = st.tuples(
        st.floats(min_value=0.0, max_value=6.0,
                  allow_nan=False, allow_infinity=False),  # defer instant
        delay,                                             # extra transit
        st.integers(min_value=0, max_value=n_zones - 1),   # destination
        st.integers(min_value=0, max_value=99),            # payload value
        st.integers(min_value=0, max_value=2),             # echo hops
    )
    sends = {
        z: draw(st.lists(send, max_size=5)) for z in range(n_zones)
    }
    # Non-uniform start clocks, bounded well below the lookahead so a
    # message can never deliver into a late-starting shard's past.
    clocks = {
        s: draw(
            st.floats(min_value=0.0, max_value=0.4,
                      allow_nan=False, allow_infinity=False)
        )
        for s in set(owner.values())
    }
    specs = [
        {
            "shard": s,
            "clock": clocks[s],
            "zones": [z for z, zs in owner.items() if zs == s],
            "sends": [
                (z, sends[z]) for z in sorted(owner) if owner[z] == s
            ],
        }
        for s in sorted(set(owner.values()))
    ]
    window = draw(st.sampled_from([1.0, 0.5, 0.3, 0.25]))
    return specs, owner, window


@given(topology=topologies())
@settings(deadline=None, max_examples=60)
def test_optimized_loop_matches_reference(topology):
    """Idle-skip + batched inject ≡ the naive reference, byte for byte."""
    specs, owner, window = topology
    shards = [_build_shard(s) for s in specs]
    reference_epochs(shards, owner, window, HORIZON)
    expected = [_finalize(s) for s in shards]

    shards = [_build_shard(s) for s in specs]
    stats = run_epochs(shards, owner, window, HORIZON)
    assert [_finalize(s) for s in shards] == expected
    # nothing over- or under-counted: run + skipped covers the exact
    # grid the reference loop walks (computed with the same float ops)
    t0 = min(s["clock"] for s in specs)
    total, t = 0, t0
    while t < HORIZON:
        total += 1
        t = min(t0 + total * window, HORIZON)
    assert stats.epochs_run + stats.epochs_skipped == total


@given(topology=topologies())
@settings(deadline=None, max_examples=8)
def test_scatter_gather_workers_match_reference(topology):
    """The full parallel path — scatter-gather pipes, packed wire
    format, worker-side skip votes — is byte-identical too.  Few
    examples: each spawns one process per shard."""
    specs, owner, window = topology
    shards = [_build_shard(s) for s in specs]
    reference_epochs(shards, owner, window, HORIZON)
    expected = [_finalize(s) for s in shards]

    parallel = run_sharded(
        _build_shard,
        specs,
        owner,
        window=window,
        until=HORIZON,
        finalize=_finalize,
        jobs=len(specs),
    )
    assert parallel == expected
