"""Property-based tests for the FluidChannel fair-share model.

Driven by seeded stdlib ``random`` sequences of flow arrivals,
cancellations, and idle gaps (no extra dependencies), these check the
two invariants the analytic fluid model promises:

- **work conservation** — whenever at least one flow is active the
  medium drains at exactly ``bps`` aggregate, so the bytes delivered
  over a run equal ``bps`` times the union of busy intervals;
- **FIFO completion within a size class** — with fair sharing and equal
  per-flow rates, an earlier arrival of the same size never finishes
  after a later one.
"""

import random

import pytest

from repro.network.link import FluidChannel
from repro.sim import Environment

BPS = 1_000_000.0
SIZES = (20_000.0, 125_000.0, 400_000.0)


class _FlowMeta:
    def __init__(self, index, size, added_at):
        self.index = index
        self.size = size
        self.added_at = added_at
        self.done_at = None
        self.cancelled = False
        self.drained = None  # filled at cancel time


def _drive(seed, ops=60):
    """Random add/cancel/wait schedule; returns (metas, busy_points).

    ``busy_points`` samples ``(now, active_flows)`` at every moment the
    flow set changes — arrivals, cancellations, and completions — which
    is exactly when the fluid model's aggregate rate can change.
    """
    rng = random.Random(seed)
    env = Environment()
    channel = FluidChannel(env)
    metas = []
    active = []  # (flow, meta)
    points = []

    def mark(now=None):
        points.append((env.now, channel.active_flows))

    def driver(env):
        for _ in range(ops):
            roll = rng.random()
            if roll < 0.55 or not active:
                size = rng.choice(SIZES)
                meta = _FlowMeta(len(metas), size, env.now)
                metas.append(meta)
                flow = channel.add(size, BPS)
                active.append((flow, meta))

                def on_done(_ev, meta=meta):
                    meta.done_at = env.now
                    mark()

                flow.done.add_callback(on_done)
                mark()
            elif roll < 0.70:
                flow, meta = active.pop(rng.randrange(len(active)))
                if meta.done_at is None:
                    channel.cancel(flow)
                    meta.cancelled = True
                    meta.drained = meta.size - flow.remaining
                    mark()
            else:
                yield env.timeout(rng.uniform(0.0, 0.25))

    env.run(until=env.process(driver(env)))
    env.run()  # let the remaining flows drain
    return metas, points


def _busy_seconds(points):
    """Length of the union of intervals with >= 1 active flow."""
    busy = 0.0
    for (t0, n0), (t1, _n1) in zip(points, points[1:]):
        if n0 > 0:
            busy += t1 - t0
    return busy


@pytest.mark.parametrize("seed", range(8))
def test_goodput_conserves_bandwidth(seed):
    metas, points = _drive(seed)
    assert metas, "schedule produced no flows"
    # Every uncancelled flow completed once the heap drained.
    for meta in metas:
        if not meta.cancelled:
            assert meta.done_at is not None, f"flow {meta.index} never finished"
    drained = sum(
        meta.drained if meta.cancelled else meta.size for meta in metas
    )
    busy = _busy_seconds(points)
    assert drained == pytest.approx(BPS * busy, rel=1e-6)


@pytest.mark.parametrize("seed", range(8))
def test_fifo_completion_within_size_class(seed):
    metas, _points = _drive(seed)
    by_size = {}
    for meta in metas:
        if not meta.cancelled:
            by_size.setdefault(meta.size, []).append(meta)
    for size, group in by_size.items():
        group.sort(key=lambda m: m.index)  # arrival order
        done_times = [m.done_at for m in group]
        assert done_times == sorted(done_times), (
            f"size {size}: completions out of arrival order: {done_times}"
        )


@pytest.mark.parametrize("seed", range(4))
def test_cancelled_flows_never_exceed_their_size(seed):
    metas, _points = _drive(seed)
    for meta in metas:
        if meta.cancelled:
            assert -1e-9 <= meta.drained <= meta.size + 1e-9


def test_equal_flows_share_fairly():
    """n identical flows started together all finish at n * size / bps."""
    env = Environment()
    channel = FluidChannel(env)
    flows = [channel.add(100_000.0, BPS) for _ in range(4)]
    env.run()
    assert env.now == pytest.approx(4 * 100_000.0 / BPS)
    assert all(f.done.triggered for f in flows)
    assert channel.active_flows == 0
