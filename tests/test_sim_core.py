"""Unit tests for the discrete-event simulation kernel (events, core, process)."""

import pytest

from repro.sim import (
    Environment,
    Event,
    EventState,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_custom_initial_time():
    assert Environment(initial_time=5.5).now == 5.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.25)
    env.run()
    assert env.now == 3.25


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"


def test_run_until_time_stops_at_horizon():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    assert env.run(until=env.process(proc(env))) == 42


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == "done"


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_lifecycle_states():
    env = Environment()
    ev = env.event()
    assert ev.state is EventState.PENDING
    assert not ev.triggered
    ev.succeed("v")
    assert ev.state is EventState.TRIGGERED
    env.run()
    assert ev.state is EventState.PROCESSED
    assert ev.value == "v"


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_pending_event_value_undefined():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_raises_in_waiting_process():
    env = Environment()

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught:{exc}"

    ev = env.event()
    p = env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    assert env.run(until=p) == "caught:boom"


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    ev = env.event()
    ev.defused = True
    ev.fail(RuntimeError("quiet"))
    env.run()  # no raise


def test_callback_after_processing_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("late")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["late"]


def test_all_of_waits_for_every_child():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(until=env.process(proc(env))) == (3.0, ["a", "b"])


def test_any_of_fires_on_first_child():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(9, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    assert env.run(until=env.process(proc(env))) == (1.0, ["fast"])


def test_all_of_empty_succeeds_immediately():
    env = Environment()

    def proc(env):
        res = yield env.all_of([])
        return res

    assert env.run(until=env.process(proc(env))) == {}


def test_condition_propagates_child_failure():
    env = Environment()

    def proc(env):
        bad = env.event()
        bad.fail(ValueError("child died"))
        try:
            yield env.all_of([bad, env.timeout(5)])
        except ValueError as exc:
            return str(exc)

    assert env.run(until=env.process(proc(env))) == "child died"


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    t = env2.timeout(1)
    with pytest.raises(SimulationError):
        env1.all_of([t])


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return {"answer": 42}

    p = env.process(proc(env))
    env.run()
    assert p.value == {"answer": 42}


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def waiter(env, p):
        try:
            yield p
        except KeyError:
            return "saw it"

    p = env.process(failing(env))
    w = env.process(waiter(env, p))
    assert env.run(until=w) == "saw it"


def test_process_chain_composes():
    env = Environment()

    def inner(env):
        yield env.timeout(2)
        return 10

    def outer(env):
        v = yield env.process(inner(env))
        yield env.timeout(1)
        return v + 1

    assert env.run(until=env.process(outer(env))) == 11
    assert env.now == 3.0


def test_interrupt_delivers_cause():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            return ("interrupted", exc.cause, env.now)

    def killer(env, victim):
        yield env.timeout(5)
        victim.interrupt("teardown")

    p = env.process(sleeper(env))
    env.process(killer(env, p))
    assert env.run(until=p) == ("interrupted", "teardown", 5.0)


def test_interrupt_detaches_from_target():
    env = Environment()
    resumed = []

    def sleeper(env):
        try:
            yield env.timeout(10)
            resumed.append("timeout fired into process")
        except Interrupt:
            yield env.timeout(1)  # keep living after interrupt
            return "survived"

    def killer(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    p = env.process(sleeper(env))
    env.process(killer(env, p))
    assert env.run(until=p) == "survived"
    env.run()
    assert resumed == []


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100)

    def killer(env, victim):
        yield env.timeout(1)
        victim.interrupt("die")

    p = env.process(sleeper(env))
    p.defused = True
    env.process(killer(env, p))
    env.run()
    assert isinstance(p.exception, Interrupt)


def test_yield_non_event_surfaces_error():
    env = Environment()

    def bad(env):
        try:
            yield 42  # type: ignore[misc]
        except SimulationError as exc:
            return f"error:{type(exc).__name__}"

    assert env.run(until=env.process(bad(env))).startswith("error:")


def test_is_alive_tracks_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_defer_runs_callable():
    env = Environment()
    hits = []
    env.defer(lambda: hits.append(env.now), delay=2.5)
    env.run()
    assert hits == [2.5]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.run()
    assert env.peek() == float("inf")


def test_many_processes_scale():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i * 0.001)
        done.append(i)

    for i in range(1000):
        env.process(proc(env, i))
    env.run()
    assert len(done) == 1000
    assert done == sorted(done)
