"""Unit tests for the discrete-event simulation kernel (events, core, process)."""

import pytest

from repro.sim import (
    Environment,
    Event,
    EventState,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_custom_initial_time():
    assert Environment(initial_time=5.5).now == 5.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.25)
    env.run()
    assert env.now == 3.25


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"


def test_run_until_time_stops_at_horizon():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    assert env.run(until=env.process(proc(env))) == 42


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == "done"


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_lifecycle_states():
    env = Environment()
    ev = env.event()
    assert ev.state is EventState.PENDING
    assert not ev.triggered
    ev.succeed("v")
    assert ev.state is EventState.TRIGGERED
    env.run()
    assert ev.state is EventState.PROCESSED
    assert ev.value == "v"


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_pending_event_value_undefined():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_raises_in_waiting_process():
    env = Environment()

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught:{exc}"

    ev = env.event()
    p = env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    assert env.run(until=p) == "caught:boom"


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    ev = env.event()
    ev.defused = True
    ev.fail(RuntimeError("quiet"))
    env.run()  # no raise


def test_callback_after_processing_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("late")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["late"]


def test_all_of_waits_for_every_child():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(until=env.process(proc(env))) == (3.0, ["a", "b"])


def test_any_of_fires_on_first_child():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(9, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    assert env.run(until=env.process(proc(env))) == (1.0, ["fast"])


def test_all_of_empty_succeeds_immediately():
    env = Environment()

    def proc(env):
        res = yield env.all_of([])
        return res

    assert env.run(until=env.process(proc(env))) == {}


def test_condition_propagates_child_failure():
    env = Environment()

    def proc(env):
        bad = env.event()
        bad.fail(ValueError("child died"))
        try:
            yield env.all_of([bad, env.timeout(5)])
        except ValueError as exc:
            return str(exc)

    assert env.run(until=env.process(proc(env))) == "child died"


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    t = env2.timeout(1)
    with pytest.raises(SimulationError):
        env1.all_of([t])


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return {"answer": 42}

    p = env.process(proc(env))
    env.run()
    assert p.value == {"answer": 42}


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def waiter(env, p):
        try:
            yield p
        except KeyError:
            return "saw it"

    p = env.process(failing(env))
    w = env.process(waiter(env, p))
    assert env.run(until=w) == "saw it"


def test_process_chain_composes():
    env = Environment()

    def inner(env):
        yield env.timeout(2)
        return 10

    def outer(env):
        v = yield env.process(inner(env))
        yield env.timeout(1)
        return v + 1

    assert env.run(until=env.process(outer(env))) == 11
    assert env.now == 3.0


def test_interrupt_delivers_cause():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            return ("interrupted", exc.cause, env.now)

    def killer(env, victim):
        yield env.timeout(5)
        victim.interrupt("teardown")

    p = env.process(sleeper(env))
    env.process(killer(env, p))
    assert env.run(until=p) == ("interrupted", "teardown", 5.0)


def test_interrupt_detaches_from_target():
    env = Environment()
    resumed = []

    def sleeper(env):
        try:
            yield env.timeout(10)
            resumed.append("timeout fired into process")
        except Interrupt:
            yield env.timeout(1)  # keep living after interrupt
            return "survived"

    def killer(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    p = env.process(sleeper(env))
    env.process(killer(env, p))
    assert env.run(until=p) == "survived"
    env.run()
    assert resumed == []


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100)

    def killer(env, victim):
        yield env.timeout(1)
        victim.interrupt("die")

    p = env.process(sleeper(env))
    p.defused = True
    env.process(killer(env, p))
    env.run()
    assert isinstance(p.exception, Interrupt)


def test_yield_non_event_surfaces_error():
    env = Environment()

    def bad(env):
        try:
            yield 42  # type: ignore[misc]
        except SimulationError as exc:
            return f"error:{type(exc).__name__}"

    assert env.run(until=env.process(bad(env))).startswith("error:")


def test_is_alive_tracks_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_defer_runs_callable():
    env = Environment()
    hits = []
    env.defer(lambda: hits.append(env.now), delay=2.5)
    env.run()
    assert hits == [2.5]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.run()
    assert env.peek() == float("inf")


def test_run_until_horizon_includes_boundary_event():
    env = Environment()
    hits = []
    env.defer(lambda: hits.append("at"), delay=1.0)
    env.defer(lambda: hits.append("after"), delay=1.0 + 1e-9)
    env.run(until=1.0)
    # An event scheduled exactly at the horizon fires; the first event
    # strictly beyond it stays queued and peek() reports its time.
    assert hits == ["at"]
    assert env.now == 1.0
    assert env.peek() == 1.0 + 1e-9
    env.run()
    assert hits == ["at", "after"]


def test_defer_beyond_horizon_is_pending_not_lost():
    env = Environment()
    hits = []
    env.defer(lambda: hits.append(env.now), delay=5.0)
    env.run(until=2.0)
    assert hits == []
    assert env.now == 2.0
    assert env.peek() == 5.0
    env.run(until=5.0)
    assert hits == [5.0]
    assert env.peek() == float("inf")


def test_event_count_tracks_scheduled_events():
    env = Environment()
    base = env.event_count
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.event_count == base + 2


# ------------------------------------------------------------ timeout pool
def test_timeout_pool_recycles_and_reuses():
    env = Environment()

    def proc(env):
        for _ in range(3):
            yield env.timeout(1.0)

    env.run(until=env.process(proc(env)))
    assert env._timeout_pool
    recycled = env._timeout_pool[-1]
    assert env.timeout(0.5) is recycled


def test_timeout_pool_skips_events_still_referenced():
    env = Environment()
    held = env.timeout(1.0)  # the test's reference vetoes recycling
    env.run()
    assert held.processed
    assert held not in env._timeout_pool
    assert not env._timeout_pool


def test_pooled_timeout_resets_value_and_validates_delay():
    env = Environment()
    seen = []

    def proc(env):
        seen.append((yield env.timeout(1.0, value="payload")))

    env.run(until=env.process(proc(env)))
    assert seen == ["payload"]
    assert env._timeout_pool
    with pytest.raises(ValueError):
        env.timeout(-1.0)
    fresh = env.timeout(0.0)
    assert fresh.value is None  # no stale value leaks out of the pool


def test_many_processes_scale():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i * 0.001)
        done.append(i)

    for i in range(1000):
        env.process(proc(env, i))
    env.run()
    assert len(done) == 1000
    assert done == sorted(done)
