"""Tests for the QoS controller and the density experiment."""

import pytest

from repro.network import make_link
from repro.offload import OffloadRequest
from repro.platform import ClusterPlatform, QoSController
from repro.sim import Environment
from repro.workloads import CHESS_GAME, LINPACK


def test_controller_validation():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    with pytest.raises(ValueError):
        QoSController(cluster, check_interval_s=0)
    with pytest.raises(ValueError):
        QoSController(cluster, imbalance_threshold=0)
    with pytest.raises(ValueError):
        QoSController(cluster, max_migrations_per_check=0)


def test_no_rebalance_when_balanced():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    controller = QoSController(cluster)
    migrated = env.run(until=env.process(controller.rebalance_once()))
    assert migrated == 0
    assert controller.actions == []


def _warm_node(env, cluster, node_idx, devices):
    """Route some devices onto one node and serve a request for each."""
    link = make_link("lan-wifi")
    node = cluster.nodes[node_idx]
    for i, dev in enumerate(devices):
        cluster.routed[dev] = node_idx
        env.run(until=node.submit(
            OffloadRequest(100 + i, dev, "chess", CHESS_GAME), link))
    return link


def test_rebalance_migrates_idle_runtime_to_cool_node():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2, policy="device-sticky")
    link = _warm_node(env, cluster, 0, ["d0", "d1", "d2"])
    # Pile in-flight load on node 0 so it reads hot at the check.
    hot = cluster.nodes[0]
    in_flight = [
        hot.submit(OffloadRequest(200 + i, f"d{i}", "chess", CHESS_GAME,
                                  seq_on_device=9), link)
        for i in range(3)
    ]
    controller = QoSController(cluster, imbalance_threshold=2)

    def check(env):
        yield env.timeout(0.5)  # mid-flight: node 0 busy, node 1 idle
        migrated = yield env.process(controller.rebalance_once())
        return migrated

    migrated = env.run(until=env.process(check(env)))
    # No idle runtime was available mid-flight (all three are serving) —
    # the controller must skip rather than disrupt.
    env.run()
    assert migrated in (0, 1, 2, 3)
    assert all(a.report or a.skipped_reason for a in controller.actions)


def test_rebalance_moves_idle_runtime_and_reroutes_device():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2, policy="device-sticky")
    link = _warm_node(env, cluster, 0, ["d0", "d1", "d2"])
    hot = cluster.nodes[0]
    # Keep two runtimes busy; d2's runtime is idle and migratable.
    busy = [
        hot.submit(OffloadRequest(300 + i, f"d{i}", "chess", CHESS_GAME,
                                  seq_on_device=9), link)
        for i in range(2)
    ]
    controller = QoSController(cluster, imbalance_threshold=2)

    def check(env):
        yield env.timeout(0.5)
        migrated = yield env.process(controller.rebalance_once())
        return migrated

    migrated = env.run(until=env.process(check(env)))
    env.run()
    assert migrated == 1
    report = controller.migrations[0]
    assert report.kind == "cloud-android-container"
    # The migrated device now routes to the cool node.
    assert cluster.routed[
        cluster.nodes[1].db.get(report.new_cid).owner_device] == 1
    # And its next request is served there, warm.
    dev = cluster.nodes[1].db.get(report.new_cid).owner_device
    result = env.run(until=cluster.submit(
        OffloadRequest(400, dev, "chess", CHESS_GAME, seq_on_device=10), link))
    assert result.executed_on == report.new_cid


def test_controller_background_loop_runs():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    controller = QoSController(cluster, check_interval_s=5.0)
    controller.start()
    env.run(until=30.0)  # several checks on an idle cluster: no actions
    assert controller.actions == []


def test_density_experiment_shape():
    from repro.experiments import density

    data = density.run()
    vm_steps = data["vm"]
    rt_steps = data["rattrap"]
    # VM hits OOM at some step; Rattrap survives every tested step.
    assert any(not s["served"] for s in vm_steps)
    assert all(s["served"] for s in rt_steps)
    vm_max = max(s["tenants"] for s in vm_steps if s["served"])
    rt_max = max(s["tenants"] for s in rt_steps if s["served"])
    assert rt_max >= 4 * vm_max
    text = density.report(data)
    assert "OOM" in text and "tenants" in text
