"""Smoke + shape tests for the experiment regenerators and the CLI."""

import pytest

from repro.experiments import (
    fig1_phases,
    fig3_datacomp,
    section3e_redundancy,
    table1_overheads,
)
from repro.experiments.common import build_platform, run_workload_experiment
from repro.experiments.runner import EXPERIMENTS, main, run_experiment
from repro.sim import Environment
from repro.workloads import LINPACK


def test_build_platform_names():
    env = Environment()
    assert build_platform(env, "vm").name == "vm"
    assert build_platform(Environment(), "rattrap").name == "rattrap"
    assert build_platform(Environment(), "rattrap-wo").name == "rattrap-wo"
    with pytest.raises(ValueError):
        build_platform(Environment(), "kubernetes")


def test_run_workload_experiment_basics():
    exp = run_workload_experiment("rattrap", LINPACK, devices=2,
                                  requests_per_device=2, seed=0)
    assert len(exp.results) == 4
    assert exp.platform_name == "rattrap"
    assert exp.scenario == "lan-wifi"
    assert not exp.devices


def test_run_workload_experiment_with_energy_devices():
    exp = run_workload_experiment("vm", LINPACK, devices=2, requests_per_device=2,
                                  seed=0, with_energy=True)
    assert set(exp.devices) == {"device-0", "device-1"}
    assert all(d.offloaded_requests == 2 for d in exp.devices.values())
    assert all(d.energy_used_j > 0 for d in exp.devices.values())


def test_experiments_registry_covers_all_paper_artifacts():
    assert set(EXPERIMENTS) == {
        "sec3e", "fig1", "fig2", "fig3", "fig6", "table1", "fig9", "table2",
        "fig10", "fig11", "ablations", "battery", "sensitivity", "scorecard", "density",
    }


def test_run_experiment_unknown_name():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_runner_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out and "table1" in out


def test_runner_cli_unknown(capsys):
    assert main(["fig99"]) == 2


def test_runner_cli_runs_single_experiment(capsys):
    assert main(["sec3e"]) == 0
    out = capsys.readouterr().out
    assert "redundancy" in out
    assert "68.4" in out


def test_table1_report_text():
    text = table1_overheads.report(table1_overheads.run())
    assert "28.72 s" in text
    assert "16.4" in text
    assert "7.1 MB" in text


def test_sec3e_report_text():
    text = section3e_redundancy.report(section3e_redundancy.run())
    assert "4372" in text and "771" in text


def test_fig1_report_renders_all_workloads():
    text = fig1_phases.report(fig1_phases.run())
    for workload in ("ocr", "chess", "virusscan", "linpack"):
        assert workload in text


def test_fig3_report_composition_sums():
    data = fig3_datacomp.run()
    text = fig3_datacomp.report(data)
    assert "VM id" in text
    for per_vm in data.values():
        for row in per_vm:
            assert (
                row["mobile_code"] + row["file_param"] + row["control"]
                == pytest.approx(1.0)
            )


def test_fig9_report_contains_speedups():
    from repro.experiments import fig9_performance

    text = fig9_performance.report(fig9_performance.run())
    assert "prep W/O" in text and "exec Rattrap" in text
    assert "rattrap-wo" in text


def test_table2_report_compares_to_paper():
    from repro.experiments import table2_migrated

    text = table2_migrated.report(table2_migrated.run())
    assert "29440" in text or "29,440" in text  # paper column present
    assert "measured vs paper" in text


def test_fig2_report_sparklines():
    from repro.experiments import fig2_serverload

    text = fig2_serverload.report(fig2_serverload.run())
    assert "CPU %" in text and "MB/s" in text


def test_fig10_report_all_scenarios():
    from repro.experiments import fig10_power

    text = fig10_power.report(fig10_power.run())
    for scenario in ("lan-wifi", "wan-wifi", "3g", "4g"):
        assert scenario in text


def test_fig11_report_paper_columns():
    from repro.experiments import fig11_trace_cdf

    text = fig11_trace_cdf.report(fig11_trace_cdf.run())
    assert "cold boots" in text
    assert "54.0" in text  # paper reference value shown alongside


def test_battery_experiment_orderings():
    from repro.experiments import battery

    data = battery.run(users=3, days=0.5)
    # Offloading always beats local; Rattrap beats W/O beats VM.
    local = data["local"]["joules_per_device_day"]
    vm = data["vm"]["joules_per_device_day"]
    wo = data["rattrap-wo"]["joules_per_device_day"]
    rt = data["rattrap"]["joules_per_device_day"]
    assert rt < wo < vm < local
    text = battery.report(data)
    assert "battery" in text.lower()


def test_sensitivity_experiment_monotone():
    from repro.experiments import sensitivity

    data = sensitivity.run()
    # More CPU tax -> larger Linpack speedup; more I/O tax -> larger
    # VirusScan speedup (both strictly monotone).
    cpu = [data["cpu_tax"][t] for t in sensitivity.CPU_TAX_SWEEP]
    io = [data["io_tax"][t] for t in sensitivity.IO_TAX_SWEEP]
    assert cpu == sorted(cpu)
    assert io == sorted(io)
    text = sensitivity.report(data)
    assert "Sensitivity" in text


def test_export_experiment_writes_json(tmp_path):
    import json

    from repro.experiments.runner import export_experiment

    path = export_experiment("sec3e", str(tmp_path))
    data = json.loads(open(path).read())
    assert data["never_accessed_fraction"] == pytest.approx(0.684, abs=0.001)
    assert data["redundant_counts"]["kernel_module"] == 4372


def test_export_handles_numpy_payloads(tmp_path):
    import json

    from repro.experiments.runner import export_experiment

    path = export_experiment("fig2", str(tmp_path))
    data = json.loads(open(path).read())
    assert len(data["ocr"]["cpu_percent"]) == 180


def test_runner_cli_export_flag(tmp_path, capsys):
    from repro.experiments.runner import main

    assert main(["table1", "--export", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "exported" in out
    assert (tmp_path / "table1.json").exists()


def test_scorecard_all_claims_pass():
    from repro.experiments import scorecard

    checks = scorecard.run()
    failing = [c for c in checks if not c.passed]
    assert not failing, f"claims out of band: {[(c.artifact, c.claim) for c in failing]}"
    assert len(checks) >= 12
    text = scorecard.report(checks)
    assert f"{len(checks)}/{len(checks)} claims reproduced" in text


def test_fig6_report_skipped_stages():
    from repro.experiments import fig6_boot

    data = fig6_boot.run()
    assert set(data) == {"android-device", "android-vm", "cac-nonoptimized",
                         "cac-optimized"}
    totals = {k: sum(d for _, d in v) for k, v in data.items()}
    assert totals["android-vm"] == pytest.approx(28.72, rel=0.02)
    assert totals["cac-optimized"] == pytest.approx(1.75, rel=0.02)
    text = fig6_boot.report(data)
    assert "skips entirely" in text
    assert "load_kernel_ramdisk" in text


def test_density_report_text():
    from repro.experiments import density

    text = density.report(density.run())
    assert "Rattrap 128 tenants" in text or "Rattrap" in text
    assert "OOM" in text


def test_battery_report_savings_line():
    from repro.experiments import battery

    text = battery.report(battery.run(users=2, days=0.25))
    assert "less device energy" in text
