"""Unit + property tests for the layered COW filesystem substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.unionfs import (
    FileNode,
    Layer,
    LayerError,
    StorageReport,
    UnionError,
    UnionMount,
    dedup_savings,
    fleet_usage,
    normalize_path,
    split_path,
)


# ------------------------------------------------------------------- inode
def test_normalize_path():
    assert normalize_path("/a//b/../c") == "/a/c"
    assert normalize_path("/a/b/") == "/a/b"
    with pytest.raises(ValueError):
        normalize_path("relative/path")
    with pytest.raises(ValueError):
        normalize_path("")


def test_split_path_ancestors():
    assert split_path("/system/lib/libc.so") == ["/system", "/system/lib"]
    assert split_path("/init") == []


def test_filenode_validation():
    with pytest.raises(ValueError):
        FileNode(path="/x", size=-1)
    with pytest.raises(ValueError):
        FileNode(path="/d", is_dir=True, size=5)


def test_filenode_touch_and_names():
    n = FileNode(path="/system/lib/libc.so", size=100)
    assert n.atime is None
    n.touch(12.5)
    assert n.atime == 12.5
    assert n.name == "libc.so"
    assert n.parent == "/system/lib"


def test_filenode_clone_independent():
    n = FileNode(path="/x", size=10)
    c = n.clone()
    c.touch(1.0)
    assert n.atime is None


# ------------------------------------------------------------------- Layer
def test_layer_add_and_query():
    layer = Layer("base")
    layer.add_file("/system/app/a.apk", 1000, category="app")
    assert layer.has("/system/app/a.apk")
    assert layer.get("/system/app/a.apk").size == 1000
    assert len(layer) == 1
    assert layer.total_bytes == 1000


def test_layer_read_only_enforced():
    layer = Layer("base").seal()
    with pytest.raises(LayerError):
        layer.add_file("/x", 1)
    with pytest.raises(LayerError):
        layer.whiteout("/x")
    with pytest.raises(LayerError):
        layer.remove("/x")


def test_layer_remove_missing_rejected():
    with pytest.raises(LayerError):
        Layer("l").remove("/ghost")


def test_layer_hard_links_refcount_file():
    layer = Layer("io")
    layer.add_file("/offload/digest", 100)
    assert layer.nlink("/offload/digest") == 1
    assert layer.nlink("/missing") == 0
    assert layer.link("/offload/digest") == 2
    assert layer.unlink("/offload/digest") == 1
    assert layer.has("/offload/digest")  # survivors keep the file alive
    assert layer.unlink("/offload/digest") == 0
    assert not layer.has("/offload/digest")
    with pytest.raises(LayerError):
        layer.unlink("/offload/digest")
    with pytest.raises(LayerError):
        layer.link("/ghost")


def test_layer_hard_links_respect_read_only_and_remove():
    sealed = Layer("base")
    sealed.add_file("/x", 1)
    sealed.seal()
    with pytest.raises(LayerError):
        sealed.link("/x")
    layer = Layer("io")
    layer.add_file("/y", 1)
    layer.link("/y")
    layer.remove("/y")  # remove drops the file and its link count
    assert layer.nlink("/y") == 0


def test_layer_whiteout_drops_local_copy():
    layer = Layer("top")
    layer.add_file("/x", 5)
    layer.whiteout("/x")
    assert not layer.has("/x")
    assert layer.hides("/x")
    # Re-adding clears the whiteout.
    layer.add_file("/x", 7)
    assert not layer.hides("/x")


def test_layer_files_under_prefix():
    layer = Layer("base")
    layer.add_file("/system/lib/a.so", 10)
    layer.add_file("/system/lib/b.so", 20)
    layer.add_file("/data/app/c.apk", 30)
    assert layer.bytes_under("/system") == 30
    assert layer.bytes_under("/system/lib") == 30
    assert layer.bytes_under("/data") == 30
    assert layer.bytes_under("/vendor") == 0


def test_layer_directories_not_counted_in_bytes():
    layer = Layer("base")
    layer.add_dir("/system")
    layer.add_file("/system/f", 10)
    assert layer.total_bytes == 10


def test_layer_by_category():
    layer = Layer("base")
    layer.add_file("/a.apk", 1, category="app")
    layer.add_file("/b.so", 2, category="shared_lib")
    assert [n.path for n in layer.by_category("app")] == ["/a.apk"]


# -------------------------------------------------------------- UnionMount
@pytest.fixture
def base_layer():
    base = Layer("android-base")
    base.add_file("/system/lib/libc.so", 1000, category="shared_lib")
    base.add_file("/system/app/browser.apk", 5000, category="app")
    base.add_file("/init", 100, category="framework")
    return base.seal()


def test_union_needs_writable_top(base_layer):
    with pytest.raises(UnionError):
        UnionMount("m", [base_layer])
    with pytest.raises(UnionError):
        UnionMount("m", [])


def test_union_resolves_through_stack(base_layer):
    top = Layer("top")
    m = UnionMount("cac-1", [top, base_layer])
    assert m.exists("/system/lib/libc.so")
    assert m.provider("/system/lib/libc.so") is base_layer
    assert m.resolve("/ghost") is None


def test_union_top_shadows_lower(base_layer):
    top = Layer("top")
    top.add_file("/init", 200)
    m = UnionMount("m", [top, base_layer])
    assert m.resolve("/init").size == 200
    assert m.provider("/init") is top


def test_union_write_new_file_goes_to_top(base_layer):
    m = UnionMount("m", [Layer("top"), base_layer])
    m.write("/data/offload/task.bin", 4096, category="offload_data")
    assert m.top.has("/data/offload/task.bin")
    assert m.private_bytes() == 4096


def test_union_copy_up_preserves_lower(base_layer):
    m1 = UnionMount("m1", [Layer("t1"), base_layer])
    m2 = UnionMount("m2", [Layer("t2"), base_layer])
    m1.write("/system/lib/libc.so", 1234)
    # m1 sees the modified copy; m2 still sees the shared original.
    assert m1.resolve("/system/lib/libc.so").size == 1234
    assert m2.resolve("/system/lib/libc.so").size == 1000
    assert base_layer.get("/system/lib/libc.so").size == 1000


def test_union_copy_up_inherits_category(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    node = m.write("/system/lib/libc.so", 999)
    assert node.category == "shared_lib"


def test_union_write_over_directory_rejected():
    top = Layer("top")
    top.add_dir("/data")
    m = UnionMount("m", [top])
    with pytest.raises(IsADirectoryError):
        m.write("/data", 10)


def test_union_delete_lower_file_uses_whiteout(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    m.delete("/system/app/browser.apk")
    assert not m.exists("/system/app/browser.apk")
    assert m.top.hides("/system/app/browser.apk")
    # The shared layer still physically has it.
    assert base_layer.has("/system/app/browser.apk")


def test_union_delete_top_only_file_no_whiteout(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    m.write("/tmp/x", 5)
    m.delete("/tmp/x")
    assert not m.exists("/tmp/x")
    assert not m.top.hides("/tmp/x")


def test_union_delete_copied_up_file_still_hides_lower(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    m.write("/init", 300)  # copy-up
    m.delete("/init")
    assert not m.exists("/init")  # lower /init must stay hidden


def test_union_delete_missing_rejected(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    with pytest.raises(FileNotFoundError):
        m.delete("/nope")


def test_union_read_touches_atime(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    node = m.read("/init", now=42.0)
    assert node.atime == 42.0
    with pytest.raises(FileNotFoundError):
        m.read("/nope")


def test_union_visible_paths_merged_view(base_layer):
    top = Layer("t")
    top.add_file("/data/new", 1)
    top.whiteout("/init")
    m = UnionMount("m", [top, base_layer])
    paths = m.visible_paths()
    assert "/data/new" in paths
    assert "/init" not in paths
    assert "/system/lib/libc.so" in paths


def test_union_byte_accounting(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    m.write("/data/x", 50)
    assert m.visible_bytes() == 6100 + 50
    assert m.private_bytes() == 50
    assert m.shared_bytes() == 6100


# ------------------------------------------------------------- accounting
def test_storage_report_counts_shared_layers_once(base_layer):
    mounts = [
        UnionMount(f"cac-{i}", [Layer(f"top-{i}"), base_layer]) for i in range(5)
    ]
    for m in mounts:
        m.write("/data/private.bin", 1000)
    report = StorageReport(mounts)
    assert report.physical_bytes == base_layer.total_bytes + 5 * 1000
    assert report.logical_bytes == 5 * (base_layer.total_bytes + 1000)
    assert report.dedup_ratio == pytest.approx(35500 / 11100)
    per = report.per_mount()
    assert per["cac-0"]["private"] == 1000


def test_fleet_usage_and_savings():
    GB = 1024**3
    MB = 1024**2
    full = int(1.1 * GB)
    shared = int(985 * MB)
    private = int(7.1 * MB)
    # One instance: paper says "at least 79%" saved.
    s1 = dedup_savings(full, shared, private, instances=1)
    assert s1 >= 0.10  # single instance barely saves (shared base dominates)
    s20 = dedup_savings(full, shared, private, instances=20)
    assert s20 >= 0.79
    assert fleet_usage(private, 20, shared) == shared + 20 * private
    with pytest.raises(ValueError):
        fleet_usage(-1, 1)
    with pytest.raises(ValueError):
        dedup_savings(full, shared, private, instances=0)


# ---------------------------------------------------------------- property
paths = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=4).map(lambda s: "/" + s),
    min_size=1,
    max_size=12,
    unique=True,
)


@given(paths, st.data())
def test_union_resolution_invariants(paths, data):
    """Writes then deletes: a deleted path never resolves; visible bytes
    equal the sum of resolved sizes; top-layer provider wins."""
    base = Layer("base")
    for i, p in enumerate(paths[: len(paths) // 2]):
        base.add_file(p, (i + 1) * 10)
    base.seal()
    m = UnionMount("m", [Layer("top"), base])
    for p in paths:
        if data.draw(st.booleans(), label=f"write {p}"):
            m.write(p, data.draw(st.integers(0, 1000), label=f"size {p}"))
    deleted = []
    for p in paths:
        if m.exists(p) and data.draw(st.booleans(), label=f"delete {p}"):
            m.delete(p)
            deleted.append(p)
    for p in deleted:
        assert not m.exists(p)
    total = sum(m.resolve(p).size for p in m.visible_paths())
    assert total == m.visible_bytes()
    for p in m.visible_paths():
        prov = m.provider(p)
        assert prov is not None
        if m.top.has(p):
            assert prov is m.top


# ------------------------------------------------------- resolution cache
def test_union_cache_invalidated_by_write(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    assert m.resolve("/data/x") is None
    m.write("/data/x", 50)
    node = m.resolve("/data/x")
    assert node is not None and node.size == 50
    # Copy-up write over a cached lower-layer hit must re-resolve too.
    assert m.resolve("/system/lib/libc.so").size == 1000
    m.write("/system/lib/libc.so", 1200)
    assert m.resolve("/system/lib/libc.so").size == 1200
    assert m.provider("/system/lib/libc.so") is m.top


def test_union_cache_invalidated_by_delete_whiteout(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    assert m.resolve("/init") is not None
    assert "/init" in m.visible_paths()
    m.delete("/init")  # lower-layer file -> whiteout in the top layer
    assert m.resolve("/init") is None
    assert m.provider("/init") is None
    assert "/init" not in m.visible_paths()


def test_union_cache_sees_direct_lower_layer_mutation():
    base = Layer("android-base")
    base.add_file("/system/a", 10)
    m = UnionMount("m", [Layer("t"), base])
    assert m.resolve("/system/b") is None
    # Mutating a shared (unsealed) lower layer bumps its generation;
    # every mount's cache must notice without being written through.
    base.add_file("/system/b", 20)
    assert m.resolve("/system/b").size == 20
    assert "/system/b" in m.visible_paths()


def test_union_byte_accounting_stable_under_cached_reads(base_layer):
    m = UnionMount("m", [Layer("t"), base_layer])
    m.write("/data/x", 50)
    before = (m.visible_bytes(), m.shared_bytes(), m.private_bytes())
    for _ in range(3):  # repeated resolution through the cache
        m.resolve("/data/x")
        m.visible_paths()
    assert (m.visible_bytes(), m.shared_bytes(), m.private_bytes()) == before
    assert before == (6150, 6100, 50)
