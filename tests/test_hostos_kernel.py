"""Tests for the kernel model, loadable modules and pseudo-devices."""

import pytest

from repro.hostos import (
    ANDROID_CONTAINER_DRIVER,
    CHROMEOS_DRIVER_PACK,
    REQUIRED_ANDROID_FEATURES,
    DeviceError,
    DeviceRegistry,
    Kernel,
    KernelError,
    ModuleSpec,
    android_container_driver_pack,
)


# ------------------------------------------------------------ DeviceRegistry
def test_device_create_and_get():
    reg = DeviceRegistry()
    node = reg.create("/dev/binder", provider="binder_linux", namespaced=True)
    assert reg.get("/dev/binder") is node
    assert reg.exists("/dev/binder")
    assert node.namespaced


def test_device_duplicate_rejected():
    reg = DeviceRegistry()
    reg.create("/dev/x", provider="m")
    with pytest.raises(DeviceError):
        reg.create("/dev/x", provider="m2")


def test_device_remove_open_rejected():
    reg = DeviceRegistry()
    node = reg.create("/dev/x", provider="m")
    node.open()
    with pytest.raises(DeviceError):
        reg.remove("/dev/x")
    node.close()
    reg.remove("/dev/x")
    assert not reg.exists("/dev/x")


def test_device_missing_operations():
    reg = DeviceRegistry()
    with pytest.raises(DeviceError):
        reg.get("/dev/nope")
    with pytest.raises(DeviceError):
        reg.remove("/dev/nope")


def test_device_handle_protocol():
    reg = DeviceRegistry()
    node = reg.create("/dev/x", provider="m")
    with pytest.raises(DeviceError):
        node.close()
    with pytest.raises(DeviceError):
        node.ioctl()
    node.open()
    node.ioctl()
    assert node.ioctl_count == 1
    node.close()


def test_device_remove_provider_sweeps_only_its_nodes():
    reg = DeviceRegistry()
    reg.create("/dev/a", provider="m1")
    reg.create("/dev/b", provider="m1")
    reg.create("/dev/c", provider="m2")
    assert reg.remove_provider("m1") == 2
    assert reg.paths() == ["/dev/c"]


# ---------------------------------------------------------------- ModuleSpec
def test_module_spec_validation():
    with pytest.raises(ValueError):
        ModuleSpec(name="", provides=frozenset({"f"}))
    with pytest.raises(ValueError):
        ModuleSpec(name="m", provides=frozenset())


def test_android_driver_pack_covers_required_features():
    provided = set()
    for spec in android_container_driver_pack():
        provided |= spec.provides
    assert REQUIRED_ANDROID_FEATURES <= provided


def test_android_driver_pack_namespaces_alarm_binder_logger():
    # §IV-B1: device namespace isolates Alarm, Binder and Logger.
    for mod in ("binder_linux", "android_alarm", "android_logger"):
        spec = ANDROID_CONTAINER_DRIVER[mod]
        assert all(ns for _, ns in spec.devices), mod


# -------------------------------------------------------------------- Kernel
def test_fresh_kernel_lacks_android_features():
    k = Kernel()
    assert not k.supports("android.binder")
    assert k.supports("linux.namespaces.pid")
    assert not k.supports_all(REQUIRED_ANDROID_FEATURES)


def test_loading_driver_pack_enables_android():
    k = Kernel()
    for spec in android_container_driver_pack():
        k.load_module(spec)
    assert k.supports_all(REQUIRED_ANDROID_FEATURES)
    assert k.devices.exists("/dev/binder")
    assert k.devices.exists("/dev/log/main")
    assert k.load_count == len(android_container_driver_pack())


def test_double_load_rejected():
    k = Kernel()
    spec = ANDROID_CONTAINER_DRIVER["binder_linux"]
    k.load_module(spec)
    with pytest.raises(KernelError):
        k.load_module(spec)


def test_load_with_missing_dependency_rejected():
    k = Kernel()
    dependent = CHROMEOS_DRIVER_PACK["chromeos_pstore"]
    with pytest.raises(KernelError, match="depends"):
        k.load_module(dependent)
    k.load_module(CHROMEOS_DRIVER_PACK["chromeos_laptop"])
    k.load_module(dependent)
    assert k.supports("chromeos.pstore")


def test_duplicate_feature_rejected():
    k = Kernel()
    k.load_module(ANDROID_CONTAINER_DRIVER["binder_linux"])
    clone = ModuleSpec(name="binder_clone", provides=frozenset({"android.binder"}))
    with pytest.raises(KernelError, match="already-present"):
        k.load_module(clone)


def test_unload_removes_features_and_devices():
    k = Kernel()
    k.load_module(ANDROID_CONTAINER_DRIVER["binder_linux"])
    k.unload_module("binder_linux")
    assert not k.supports("android.binder")
    assert not k.devices.exists("/dev/binder")
    assert k.unload_count == 1


def test_unload_not_loaded_rejected():
    with pytest.raises(KernelError):
        Kernel().unload_module("ghost")


def test_unload_with_users_rejected():
    k = Kernel()
    k.load_module(ANDROID_CONTAINER_DRIVER["binder_linux"])
    k.ref_module("binder_linux")
    with pytest.raises(KernelError, match="in use"):
        k.unload_module("binder_linux")
    k.unref_module("binder_linux")
    k.unload_module("binder_linux")


def test_unload_with_dependants_rejected():
    k = Kernel()
    k.load_module(CHROMEOS_DRIVER_PACK["chromeos_laptop"])
    k.load_module(CHROMEOS_DRIVER_PACK["chromeos_pstore"])
    with pytest.raises(KernelError, match="needed by"):
        k.unload_module("chromeos_laptop")


def test_refcount_underflow_rejected():
    k = Kernel()
    k.load_module(ANDROID_CONTAINER_DRIVER["binder_linux"])
    with pytest.raises(KernelError):
        k.unref_module("binder_linux")


def test_reap_unused_respects_refcounts_and_keep():
    k = Kernel()
    for spec in android_container_driver_pack():
        k.load_module(spec)
    k.ref_module("binder_linux")
    removed = k.reap_unused(keep=["android_alarm"])
    assert "binder_linux" not in removed
    assert "android_alarm" not in removed
    assert "android_logger" in removed
    assert k.is_loaded("binder_linux")
    assert k.is_loaded("android_alarm")


def test_reap_unused_handles_dependency_chains():
    k = Kernel()
    k.load_module(CHROMEOS_DRIVER_PACK["chromeos_laptop"])
    k.load_module(CHROMEOS_DRIVER_PACK["chromeos_pstore"])
    removed = k.reap_unused()
    assert set(removed) == {"chromeos_laptop", "chromeos_pstore"}
    assert k.loaded_modules() == []


def test_module_memory_accounting():
    k = Kernel()
    assert k.module_memory_kb() == 0
    k.load_module(ANDROID_CONTAINER_DRIVER["android_logger"])
    assert k.module_memory_kb() == 1024
    k.unload_module("android_logger")
    assert k.module_memory_kb() == 0


def test_builtin_features_immutable_by_unload():
    k = Kernel()
    # Builtins are not modules and can never disappear.
    assert "linux.tmpfs" in k.builtin_features
    with pytest.raises(KernelError):
        k.unload_module("linux.tmpfs")
