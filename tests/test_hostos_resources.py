"""Tests for CPU, memory and storage models plus the assembled server."""

import pytest

from repro.hostos import (
    MB,
    CloudServer,
    MemoryAccount,
    MultiCoreCPU,
    OutOfMemoryError,
    ServerSpec,
    StorageDevice,
    hdd,
    tmpfs,
)
from repro.sim import Environment


# ------------------------------------------------------------- MultiCoreCPU
def test_cpu_single_job_exact_time():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=4)
    done = cpu.execute(5.0)
    env.run(until=done)
    assert env.now == pytest.approx(5.0)
    assert cpu.completed_jobs == 1


def test_cpu_parallel_jobs_within_cores_no_slowdown():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=4)
    events = [cpu.execute(3.0) for _ in range(4)]
    env.run(until=env.all_of(events))
    assert env.now == pytest.approx(3.0)


def test_cpu_oversubscription_processor_sharing():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    # Two jobs of 1s each on one core: PS finishes both at t=2.
    events = [cpu.execute(1.0), cpu.execute(1.0)]
    env.run(until=env.all_of(events))
    assert env.now == pytest.approx(2.0)


def test_cpu_oversubscription_unequal_jobs():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    short = cpu.execute(1.0)
    long = cpu.execute(3.0)
    env.run(until=short)
    # Both share the core: short's 1s of work takes 2s wall-clock.
    assert env.now == pytest.approx(2.0)
    env.run(until=long)
    # Remaining 2s of long runs alone: completes at 2 + 2 = 4.
    assert env.now == pytest.approx(4.0)


def test_cpu_speed_factor_models_virtualization_tax():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    done = cpu.execute(9.0, speed_factor=0.9)
    env.run(until=done)
    assert env.now == pytest.approx(10.0)


def test_cpu_zero_work_completes_immediately():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    done = cpu.execute(0.0)
    assert done.triggered


def test_cpu_validation():
    env = Environment()
    with pytest.raises(ValueError):
        MultiCoreCPU(env, cores=0)
    cpu = MultiCoreCPU(env, cores=1)
    with pytest.raises(ValueError):
        cpu.execute(-1.0)
    with pytest.raises(ValueError):
        cpu.execute(1.0, speed_factor=0.0)
    with pytest.raises(ValueError):
        cpu.execute(1.0, speed_factor=1.5)


def test_cpu_staggered_arrivals():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    finish_times = {}

    def submit(env, delay, work, tag):
        yield env.timeout(delay)
        yield cpu.execute(work, tag=tag)
        finish_times[tag] = env.now

    env.process(submit(env, 0.0, 2.0, "a"))
    env.process(submit(env, 1.0, 2.0, "b"))
    env.run()
    # a runs alone [0,1), shares [1,3): a done at 3. b then alone: 3+1=4.
    assert finish_times["a"] == pytest.approx(3.0)
    assert finish_times["b"] == pytest.approx(4.0)


def test_cpu_utilization_series_tracks_load():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=2)
    cpu.execute(4.0)
    cpu.execute(4.0)
    cpu.execute(4.0)  # 3 jobs on 2 cores -> 100% busy
    env.run()
    series = cpu.utilization.percent_series(0.0, 4.0, 1.0)
    assert series[0] == pytest.approx(100.0)
    assert cpu.active_jobs == 0


# ------------------------------------------------------------ MemoryAccount
def test_memory_reserve_release_cycle():
    env = Environment()
    mem = MemoryAccount(env, capacity_mb=1024)
    res = mem.reserve("vm-1", 512)
    assert mem.reserved_mb == 512
    assert mem.available_mb == 512
    res.use(110.56)
    assert mem.used_mb == pytest.approx(110.56)
    mem.release("vm-1")
    assert mem.reserved_mb == 0


def test_memory_oom_on_over_reserve():
    env = Environment()
    mem = MemoryAccount(env, capacity_mb=1024)
    mem.reserve("vm-1", 512)
    mem.reserve("vm-2", 512)
    with pytest.raises(OutOfMemoryError):
        mem.reserve("vm-3", 512)


def test_memory_reservation_usage_cap():
    env = Environment()
    mem = MemoryAccount(env, capacity_mb=1024)
    res = mem.reserve("cac-1", 96)
    res.use(96)
    with pytest.raises(OutOfMemoryError):
        res.use(1)
    res.free(50)
    res.use(10)
    with pytest.raises(ValueError):
        res.free(100)


def test_memory_duplicate_owner_rejected():
    env = Environment()
    mem = MemoryAccount(env, capacity_mb=1024)
    mem.reserve("x", 10)
    with pytest.raises(ValueError):
        mem.reserve("x", 10)


def test_memory_release_unknown_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        MemoryAccount(env, capacity_mb=64).release("ghost")


def test_memory_density_argument():
    # Table I: 512 MB VMs vs 96 MB optimized CACs on a 16 GB server.
    env = Environment()
    mem = MemoryAccount(env, capacity_mb=16 * 1024)
    assert mem.max_instances(512) == 32
    assert mem.max_instances(96) == 170
    with pytest.raises(ValueError):
        mem.max_instances(0)


def test_memory_reserved_series_records_changes():
    env = Environment()
    mem = MemoryAccount(env, capacity_mb=1024)

    def proc(env):
        yield env.timeout(5)
        mem.reserve("a", 100)
        yield env.timeout(5)
        mem.release("a")

    env.process(proc(env))
    env.run()
    assert mem.reserved_series.value_at(6.0) == 100
    assert mem.reserved_series.value_at(11.0) == 0


# ------------------------------------------------------------ StorageDevice
def test_storage_service_time_formula():
    env = Environment()
    dev = StorageDevice(env, "d", read_bw_mbps=100, write_bw_mbps=50, latency_s=0.01)
    assert dev.service_time(100 * MB, "read") == pytest.approx(1.01)
    assert dev.service_time(100 * MB, "write") == pytest.approx(2.01)


def test_storage_transfer_takes_time_and_tracks_bytes():
    env = Environment()
    dev = StorageDevice(env, "d", read_bw_mbps=100, write_bw_mbps=100, latency_s=0.0)

    def proc(env):
        yield env.process(dev.read(50 * MB))
        return env.now

    assert env.run(until=env.process(proc(env))) == pytest.approx(0.5)
    assert dev.tracker.reads.total == 50 * MB


def test_storage_channel_serializes_transfers():
    env = Environment()
    dev = StorageDevice(env, "d", read_bw_mbps=100, write_bw_mbps=100, latency_s=0.0)
    times = []

    def proc(env, i):
        yield env.process(dev.read(100 * MB))
        times.append(env.now)

    env.process(proc(env, 0))
    env.process(proc(env, 1))
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_storage_virt_overhead_multiplier():
    env = Environment()
    dev = StorageDevice(env, "d", read_bw_mbps=100, write_bw_mbps=100, latency_s=0.0)

    def proc(env):
        yield env.process(dev.write(100 * MB, virt_overhead=1.5))
        return env.now

    assert env.run(until=env.process(proc(env))) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        list(dev.write(1, virt_overhead=0.5))


def test_storage_capacity_enforced():
    env = Environment()
    dev = StorageDevice(
        env, "d", read_bw_mbps=1, write_bw_mbps=1, latency_s=0, capacity_bytes=100
    )
    dev.allocate(80)
    with pytest.raises(IOError):
        dev.allocate(30)
    dev.deallocate(80)
    dev.allocate(100)
    with pytest.raises(ValueError):
        dev.deallocate(200)


def test_tmpfs_much_faster_than_hdd():
    env = Environment()
    disk, mem = hdd(env), tmpfs(env)
    size = 10 * MB
    assert mem.service_time(size, "read") < disk.service_time(size, "read") / 10


# --------------------------------------------------------------- CloudServer
def test_server_defaults_match_paper_testbed():
    env = Environment()
    server = CloudServer(env)
    assert server.spec.cores == 12
    assert server.spec.memory_mb == 16 * 1024
    assert server.spec.disk_gb == 300.0
    assert server.kernel.version == "3.18.0"


def test_server_android_driver_lifecycle():
    env = Environment()
    server = CloudServer(env)
    assert not server.android_ready()
    p = server.load_android_driver()
    env.run(until=p)
    assert server.android_ready()
    assert env.now < 1.0  # module loading is fast (no reboot!)
    # Second load is a no-op.
    p2 = server.load_android_driver()
    loaded = env.run(until=p2)
    assert loaded == []
    removed = server.unload_android_driver()
    assert removed  # nothing refs the modules
    assert not server.android_ready()


def test_server_snapshot_structure():
    env = Environment()
    server = CloudServer(env, name="s1")
    snap = server.snapshot()
    assert snap["android_ready"] is False
    assert snap["memory_available_mb"] == 16 * 1024
    assert snap["cpu_active_jobs"] == 0


def test_server_spec_validation():
    with pytest.raises(ValueError):
        ServerSpec(cores=0)
