"""Tests for dynamic offload partitioning (repro.offload.partition).

Covers the decision cost model (golden table + hypothesis properties),
the partitioned replay client (byte-identity when detached, span
tiling on every path, the budget-abort same-tick race), the
QoSBudgetBook, and the partition experiment's Pareto headline.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import make_link
from repro.network.link import Link, Mbps
from repro.obs import Observability
from repro.offload import (
    MobileDevice,
    OffloadDecider,
    OffloadRequest,
    PartitionConfig,
    StaticDecider,
    replay_partitioned,
)
from repro.platform import RattrapPlatform
from repro.platform.qos import QoSBudgetBook
from repro.sim import Environment
from repro.workloads import CHESS_GAME, LINPACK, VIRUS_SCAN, generate_inflow

PROFILES = (CHESS_GAME, VIRUS_SCAN, LINPACK)


def _request(profile, rid=0, **kw):
    return OffloadRequest(
        request_id=rid, device_id="d0", app_id=profile.name,
        profile=profile, **kw,
    )


def _decide(profile, scenario, decider=None, link=None):
    """One decision against a fresh platform/device (pure snapshot)."""
    env = Environment()
    platform = RattrapPlatform(env, optimized=True)
    device = MobileDevice("d0", link or make_link(scenario))
    decider = decider or OffloadDecider()
    return decider.decide(_request(profile), device, platform)


# ----------------------------------------------------------- config / basics
def test_partition_config_validation():
    with pytest.raises(ValueError):
        PartitionConfig(decide_s=-0.1)
    with pytest.raises(ValueError):
        PartitionConfig(amortize_requests=0)
    with pytest.raises(ValueError):
        PartitionConfig(energy_weight_s_per_j=-1.0)
    with pytest.raises(ValueError):
        PartitionConfig(low_battery_threshold=1.5)
    with pytest.raises(ValueError):
        PartitionConfig(queue_weight=-0.5)
    with pytest.raises(ValueError):
        StaticDecider("maybe")


def test_energy_weight_ramps_when_battery_is_low():
    cfg = PartitionConfig(energy_weight_s_per_j=0.1,
                          low_battery_energy_weight_s_per_j=5.0)
    assert cfg.energy_weight(1.0) == pytest.approx(0.1)
    assert cfg.energy_weight(0.19) == pytest.approx(5.0)


def test_low_battery_biases_toward_energy():
    # Same 3g state; a drained battery flips linpack's close call only
    # if energy dominates — here it stays offload (offload is cheaper
    # in joules too), but chess must stay local either way.
    env = Environment()
    platform = RattrapPlatform(env, optimized=True)
    device = MobileDevice("d0", make_link("3g"))
    device.energy_used_j = 0.9 * device.battery_capacity_j
    decider = OffloadDecider()
    assert decider.decide(_request(CHESS_GAME), device, platform).choice == "local"
    assert decider.decide(_request(LINPACK), device, platform).choice == "offload"


# -------------------------------------------------------- golden decisions
GOLDEN = {
    # scenario -> {app: expected choice}; offloading pays everywhere
    # except 3g, where only the compute-bound app survives the uplink.
    "lan-wifi": {"chess": "offload", "linpack": "offload", "virusscan": "offload"},
    "wan-wifi": {"chess": "offload", "linpack": "offload", "virusscan": "offload"},
    "4g": {"chess": "offload", "linpack": "offload", "virusscan": "offload"},
    "3g": {"chess": "local", "linpack": "offload", "virusscan": "local"},
}


@pytest.mark.parametrize("scenario", sorted(GOLDEN))
def test_golden_decision_table(scenario):
    for profile in PROFILES:
        decision = _decide(profile, scenario)
        assert decision.choice == GOLDEN[scenario][profile.name], (
            f"{profile.name} on {scenario}: {decision}"
        )


def test_decision_carries_estimates_and_tallies():
    decision = _decide(CHESS_GAME, "lan-wifi")
    assert decision.local.latency_s == pytest.approx(CHESS_GAME.local_time_s)
    assert decision.offload is not None
    assert decision.offload.latency_s < decision.local.latency_s
    assert decision.budget_s == math.inf
    decider = OffloadDecider()
    env = Environment()
    platform = RattrapPlatform(env, optimized=True)
    device = MobileDevice("d0", make_link("lan-wifi"))
    decider.decide(_request(CHESS_GAME), device, platform)
    decider.decide(_request(CHESS_GAME), device, platform)
    assert (decider.offloads, decider.locals, decider.sheds) == (2, 0, 0)


def test_decider_picks_cheapest_of_several_platforms():
    env = Environment()
    fast = RattrapPlatform(env, optimized=True)
    slow = RattrapPlatform(env, optimized=False)  # VM-style cold boots
    device = MobileDevice("d0", make_link("lan-wifi"))
    decision = OffloadDecider().decide(
        _request(CHESS_GAME), device, [slow, fast]
    )
    assert decision.choice == "offload"
    assert decision.target == 1  # the optimized platform


def test_decide_is_deterministic():
    first = _decide(VIRUS_SCAN, "4g")
    second = _decide(VIRUS_SCAN, "4g")
    assert first == second


# ---------------------------------------------------- hypothesis properties
@settings(max_examples=25, deadline=None)
@given(
    profile=st.sampled_from(PROFILES),
    up_mbps=st.floats(0.05, 10.0),
    down_mbps=st.floats(0.05, 10.0),
    latency_s=st.floats(0.001, 0.3),
    scale=st.floats(1.0, 50.0),
)
def test_more_goodput_never_flips_offload_to_local(
    profile, up_mbps, down_mbps, latency_s, scale
):
    # Monotonicity in bandwidth: if the decider offloads at some
    # goodput, it still offloads when both directions get faster.
    slow = Link("slow", latency_s, up_mbps * Mbps, down_mbps * Mbps)
    fast = Link("fast", latency_s, scale * up_mbps * Mbps,
                scale * down_mbps * Mbps)
    before = _decide(profile, "", link=slow)
    after = _decide(profile, "", link=fast)
    if before.choice == "offload":
        assert after.choice == "offload"


@settings(max_examples=25, deadline=None)
@given(
    profile=st.sampled_from(PROFILES),
    scenario=st.sampled_from(sorted(GOLDEN)),
    local_scale=st.floats(1.0, 20.0),
)
def test_costlier_local_never_flips_offload_to_local(
    profile, scenario, local_scale
):
    # Monotonicity in local CPU cost: growing local_time_s (offload
    # estimates untouched) never flips an offload decision back local.
    before = _decide(profile, scenario)
    slower = profile.derive(
        f"{profile.name}-slow", local_time_s=profile.local_time_s * local_scale
    )
    after = _decide(slower, scenario)
    if before.choice == "offload":
        assert after.choice == "offload"


# ------------------------------------------------------------ budget gating
def test_budget_prefers_request_over_book():
    book = QoSBudgetBook()
    book.set_budget("chess", 9.0)
    decider = OffloadDecider(budgets=book)
    assert decider.budget_for(_request(CHESS_GAME)) == pytest.approx(9.0)
    assert decider.budget_for(
        _request(CHESS_GAME, deadline_budget_s=1.5)
    ) == pytest.approx(1.5)
    assert OffloadDecider().budget_for(_request(CHESS_GAME)) == math.inf


def test_unmeetable_budget_sheds_when_configured():
    env = Environment()
    platform = RattrapPlatform(env, optimized=True)
    device = MobileDevice("d0", make_link("3g"))
    tight = _request(VIRUS_SCAN, deadline_budget_s=0.01)
    fallback = OffloadDecider().decide(tight, device, platform)
    assert fallback.choice == "local"  # cheapest path, budget busted
    assert "unsatisfiable" in fallback.reason
    shedder = OffloadDecider(PartitionConfig(shed_over_budget=True))
    assert shedder.decide(tight, device, platform).choice == "shed"
    assert shedder.sheds == 1


# -------------------------------------------------------------- QoS budgets
def test_budget_book_validation():
    with pytest.raises(ValueError):
        QoSBudgetBook(default_budget_s=0.0)
    with pytest.raises(ValueError):
        QoSBudgetBook(alpha=0.0)
    with pytest.raises(ValueError):
        QoSBudgetBook(slack=-1.0)
    with pytest.raises(ValueError):
        QoSBudgetBook(floor_s=2.0, ceil_s=1.0)
    book = QoSBudgetBook()
    with pytest.raises(ValueError):
        book.set_budget("chess", 0.0)
    with pytest.raises(ValueError):
        book.observe("chess", -1.0)


def test_budget_book_static_wins_and_defaults_to_inf():
    book = QoSBudgetBook(adaptive=True)
    assert book.budget_for("chess") == math.inf
    book.observe("chess", 2.0)
    book.set_budget("chess", 1.0)
    assert book.budget_for("chess") == pytest.approx(1.0)


def test_budget_book_adapts_with_slack_and_clamps():
    book = QoSBudgetBook(adaptive=True, alpha=0.5, slack=2.0,
                         floor_s=0.5, ceil_s=6.0)
    book.observe("chess", 2.0)
    assert book.observed_response_s("chess") == pytest.approx(2.0)
    assert book.budget_for("chess") == pytest.approx(4.0)
    book.observe("chess", 4.0)  # EWMA -> 3.0, slack -> 6.0 (at ceil)
    assert book.budget_for("chess") == pytest.approx(6.0)
    book.observe("chess", 100.0)  # EWMA explodes; ceiling holds
    assert book.budget_for("chess") == pytest.approx(6.0)
    tiny = QoSBudgetBook(adaptive=True, floor_s=0.5)
    tiny.observe("chess", 0.01)
    assert tiny.budget_for("chess") == pytest.approx(0.5)


def test_decider_feeds_observations_into_the_book():
    book = QoSBudgetBook(adaptive=True)
    decider = OffloadDecider(budgets=book)
    results = _replay("lan-wifi", decider, requests=2)
    assert book.observed_response_s("chess") is not None


# ------------------------------------------------------- partitioned replay
def _replay(scenario, decider, requests=3, devices=1, obs=False,
            profile=CHESS_GAME, platform_factory=None):
    env = Environment()
    observer = Observability(env) if obs else None
    platform = (
        platform_factory(env) if platform_factory
        else RattrapPlatform(env, optimized=True)
    )
    plans = generate_inflow(profile, devices=devices,
                            requests_per_device=requests, seed=3)
    fleet = {
        f"device-{d}": MobileDevice(f"device-{d}", make_link(scenario))
        for d in range(devices)
    }
    results = env.run(until=env.process(
        replay_partitioned(env, platform, plans, fleet, decider=decider)
    ))
    if obs:
        return results, observer, fleet
    return results


def _fingerprint(results):
    return [
        (r.request.request_id, r.started_at, r.finished_at,
         r.executed_locally, r.shed, r.executed_on)
        for r in results
    ]


def test_detached_decider_is_byte_identical_to_always_offload():
    # The invariant the default suite rests on: an attached decider
    # that always answers "offload" (static, or adaptive with infinite
    # budgets and a full battery) perturbs nothing.
    detached = _fingerprint(_replay("lan-wifi", None, requests=4, devices=2))
    static = _fingerprint(
        _replay("lan-wifi", StaticDecider("offload"), requests=4, devices=2))
    adaptive = _fingerprint(
        _replay("lan-wifi", OffloadDecider(budgets=QoSBudgetBook()),
                requests=4, devices=2))
    assert detached == static == adaptive


def test_partition_report_identical_serial_and_parallel():
    from repro.experiments import partition

    serial = partition.report(partition.run(jobs=0, smoke=True))
    parallel = partition.report(partition.run(jobs=4, smoke=True))
    assert serial == parallel


def test_local_path_tiles_to_full_coverage():
    # chess on 3g goes local; decide + local_exec spans must tile the
    # response exactly even with a nonzero decision cost.
    decider = OffloadDecider(PartitionConfig(decide_s=0.05))
    results, observer, fleet = _replay("3g", decider, requests=3, obs=True)
    assert all(r.executed_locally for r in results)
    total = observer.tracer.phase_total_s()
    e2e = sum(r.response_time for r in results)
    assert total == pytest.approx(e2e, rel=1e-12)
    kinds = {s.kind for s in observer.tracer.spans}
    assert kinds == {"decide", "local_exec"}
    # decision latency is part of the honest response time
    assert all(r.response_time == pytest.approx(
        0.05 + CHESS_GAME.local_time_s) for r in results)
    assert fleet["device-0"].local_executions == 3


def test_offload_path_tiles_with_decide_span():
    decider = OffloadDecider(PartitionConfig(decide_s=0.05))
    results, observer, fleet = _replay("lan-wifi", decider, requests=3, obs=True)
    assert not any(r.executed_locally for r in results)
    total = observer.tracer.phase_total_s()
    e2e = sum(r.response_time for r in results)
    assert total == pytest.approx(e2e, rel=1e-9)
    kinds = {s.kind for s in observer.tracer.spans}
    assert "decide" in kinds and "execute" in kinds
    assert fleet["device-0"].offloaded_requests == 3


def test_shed_path_tiles_and_counts():
    decider = OffloadDecider(
        PartitionConfig(decide_s=0.05, shed_over_budget=True),
        budgets=QoSBudgetBook(default_budget_s=0.001),
    )
    results, observer, _ = _replay("lan-wifi", decider, requests=2, obs=True)
    assert all(r.shed for r in results)
    assert all(r.response_time == pytest.approx(0.05) for r in results)
    total = observer.tracer.phase_total_s()
    assert total == pytest.approx(sum(r.response_time for r in results))
    assert decider.sheds == 2


# ------------------------------------------- budget enforcement at runtime
class _PacedPlatform:
    """Stub serving in exactly ``service_s``, split into two hops so the
    completion event schedules *after* the client's budget timer — the
    adversarial ordering for the budget/completion same-tick race.
    Carries the client-estimate API the decider probes."""

    class _Dispatcher:
        warm_dispatch_s = 0.002

    def __init__(self, env, service_s, split_s=1.0):
        self.env = env
        self.service_s = service_s
        self.split_s = split_s
        self.dispatcher = self._Dispatcher()

    def expected_preparation_s(self, request):
        return 0.0

    def expected_queueing_s(self, request):
        return 0.0

    def expected_cache_hit_p(self, request):
        return 0.0

    def code_cached(self, request):
        return True

    def submit(self, request, link):
        from repro.offload.request import PhaseTimeline, RequestResult

        def serve(env):
            started = env.now
            yield env.timeout(self.split_s)
            yield env.timeout(self.service_s - self.split_s)
            return RequestResult(
                request=request, timeline=PhaseTimeline(),
                started_at=started, finished_at=env.now,
                executed_on="stub-0",
            )

        return self.env.process(serve(self.env))


#: chess with the app-profile budget the QoS gate and the deadline
#: client must both honour
_BUDGETED_CHESS = CHESS_GAME.derive("chess", deadline_budget_s=5.0)


def test_budget_same_tick_completion_is_kept():
    # The offload completes in the exact tick the budget expires, with
    # the expiry processing first: the result must not be thrown away.
    decider = OffloadDecider(PartitionConfig(enforce_budget=True))
    results = _replay(
        "lan-wifi", decider, requests=1, profile=_BUDGETED_CHESS,
        platform_factory=lambda env: _PacedPlatform(env, service_s=5.0),
    )
    [result] = results
    assert not result.deadline_aborted
    assert not result.executed_locally
    assert result.executed_on == "stub-0"


def test_budget_abort_falls_back_to_local():
    decider = OffloadDecider(PartitionConfig(enforce_budget=True))
    results = _replay(
        "lan-wifi", decider, requests=2, profile=_BUDGETED_CHESS,
        platform_factory=lambda env: _PacedPlatform(env, service_s=50.0),
    )
    assert all(r.deadline_aborted and r.executed_locally for r in results)
    for r in results:
        assert r.response_time == pytest.approx(5.0 + CHESS_GAME.local_time_s)


def test_deadline_client_reads_profile_budget():
    # replay_with_deadline with no explicit deadline honours the app
    # profile's deadline_budget_s — the same clock as the QoS gate:
    # both anchor at the submission instant.
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = _PacedPlatform(env, service_s=50.0)
    plans = generate_inflow(_BUDGETED_CHESS, devices=1, requests_per_device=1,
                            seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    proc = env.process(replay_with_deadline(env, platform, plans, devices))
    [result] = env.run(until=proc)
    assert result.deadline_aborted and result.executed_locally
    assert result.response_time == pytest.approx(5.0 + CHESS_GAME.local_time_s)
    # same profile through the QoS-enforcing partition client: the
    # abort lands at the identical instant
    decider = OffloadDecider(PartitionConfig(enforce_budget=True))
    [partitioned] = _replay(
        "lan-wifi", decider, requests=1, profile=_BUDGETED_CHESS,
        platform_factory=lambda env: _PacedPlatform(env, service_s=50.0),
    )
    assert partitioned.finished_at == pytest.approx(result.finished_at)


def test_unbudgeted_deadline_replay_never_aborts():
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = _PacedPlatform(env, service_s=50.0)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    proc = env.process(replay_with_deadline(env, platform, plans, devices))
    [result] = env.run(until=proc)
    assert not result.deadline_aborted
    assert result.executed_on == "stub-0"


def test_profile_budget_validation():
    with pytest.raises(ValueError):
        CHESS_GAME.derive("bad", deadline_budget_s=0.0)
    with pytest.raises(ValueError):
        _request(CHESS_GAME, deadline_budget_s=-1.0)


# ------------------------------------------------------------- replay edges
def test_replay_partitioned_validates_inputs():
    env = Environment()
    platform = RattrapPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    with pytest.raises(ValueError):
        env.run(until=env.process(
            replay_partitioned(env, [], plans, {})))
    with pytest.raises(ValueError):
        env.run(until=env.process(
            replay_partitioned(env, platform, plans, {})))


def test_decision_metrics_counters():
    from repro.obs import metrics_of

    env = Environment()
    observer = Observability(env, tracing=False, metrics=True)
    platform = RattrapPlatform(env, optimized=True)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=3, seed=3)
    fleet = {"device-0": MobileDevice("device-0", make_link("3g"))}
    env.run(until=env.process(replay_partitioned(
        env, platform, plans, fleet, decider=OffloadDecider())))
    snapshot = observer.metrics.snapshot()
    assert snapshot["counters"]["client.decisions.local"] == 3


# --------------------------------------------------------------- experiment
def test_partition_experiment_pareto_headline():
    from repro.experiments import partition

    data = partition.run(jobs=0, smoke=True)
    assert set(data) == {
        (scenario, arm)
        for scenario in partition.PARTITION_SCENARIOS
        for arm in partition.ARMS
    }
    # the adaptive arm must dominate both statics somewhere (3g is the
    # engineered arm: chess/virusscan local, linpack offloaded)
    winners = partition.pareto_dominant_arms(data)
    assert "3g" in winners
    cell = data[("3g", "adaptive")]
    assert 0.0 < cell["local_fraction"] < 1.0
    # static arms are pure
    assert data[("3g", "offload")]["local_fraction"] == 0.0
    assert data[("3g", "local")]["local_fraction"] == 1.0
    # every cell tiles exactly
    for m in data.values():
        assert m["phase_sum_s"] == pytest.approx(m["e2e_sum_s"], rel=1e-9)
    text = partition.report(data)
    assert "Pareto-dominates" in text
    assert "span cover %" in text
