"""Tests for links, scenarios and message transfer."""

import numpy as np
import pytest

from repro.network import (
    FlowLink,
    FluidChannel,
    Link,
    Mbps,
    SCENARIOS,
    TransferLog,
    make_link,
    scenario_names,
    send_messages,
)
from repro.offload.messages import Message
from repro.sim import Environment, Interrupt


# -------------------------------------------------------------------- Link
def test_link_validation():
    with pytest.raises(ValueError):
        Link("l", latency_s=-1, up_bw_bps=1, down_bw_bps=1)
    with pytest.raises(ValueError):
        Link("l", latency_s=0, up_bw_bps=0, down_bw_bps=1)
    with pytest.raises(ValueError):
        Link("l", latency_s=0, up_bw_bps=1, down_bw_bps=1, loss_rate=1.0)
    with pytest.raises(ValueError):
        Link("l", latency_s=0, up_bw_bps=1, down_bw_bps=1, jitter_sigma=-0.1)
    with pytest.raises(ValueError):
        Link("l", latency_s=0, up_bw_bps=1, down_bw_bps=1, handshake_rounds=0)


def test_expected_transfer_time_formula():
    link = Link("l", latency_s=0.1, up_bw_bps=1000, down_bw_bps=500,
                handshake_rounds=2)
    assert link.expected_transfer_time(1000, "up") == pytest.approx(0.2 + 1.0)
    assert link.expected_transfer_time(1000, "down") == pytest.approx(0.2 + 2.0)
    with pytest.raises(ValueError):
        link.expected_transfer_time(1, "sideways")


def test_transmit_timing_deterministic_without_jitter():
    env = Environment()
    link = Link("l", latency_s=0.05, up_bw_bps=10000, down_bw_bps=10000,
                handshake_rounds=1)

    def proc(env):
        yield env.process(link.transmit(env, 1000, "up"))
        return env.now

    assert env.run(until=env.process(proc(env))) == pytest.approx(0.05 + 0.1)
    assert link.bytes_up == 1000
    assert link.bytes_down == 0


def test_transmit_negative_bytes_rejected():
    env = Environment()
    link = make_link("lan-wifi")
    with pytest.raises(ValueError):
        list(link.transmit(env, -1, "up"))


def test_jitter_varies_latency():
    rng = np.random.default_rng(1)
    link = Link("l", latency_s=0.1, up_bw_bps=1, down_bw_bps=1,
                jitter_sigma=0.5, rng=rng)
    samples = {round(link.one_way_delay(), 9) for _ in range(20)}
    assert len(samples) > 10


def test_no_jitter_is_constant():
    link = Link("l", latency_s=0.1, up_bw_bps=1, down_bw_bps=1)
    assert link.one_way_delay() == 0.1
    assert link.rtt() == 0.2


def test_loss_inflates_wire_bytes():
    rng = np.random.default_rng(2)
    lossy = Link("l", latency_s=0, up_bw_bps=1, down_bw_bps=1,
                 loss_rate=0.2, rng=rng)
    clean = Link("c", latency_s=0, up_bw_bps=1, down_bw_bps=1)
    n = 100 * 1500
    inflated = np.mean([lossy._effective_bytes(n) for _ in range(30)])
    assert inflated > n
    assert clean._effective_bytes(n) == n
    # Roughly geometric mean: n / (1 - p).
    assert inflated == pytest.approx(n / 0.8, rel=0.1)


def test_connect_takes_one_and_a_half_rtts():
    env = Environment()
    link = Link("l", latency_s=0.1, up_bw_bps=1, down_bw_bps=1)
    env.run(until=env.process(link.connect(env)))
    assert env.now == pytest.approx(0.3)


# --------------------------------------------------------------- scenarios
def test_scenario_names_cover_paper():
    assert set(scenario_names()) == {"lan-wifi", "wan-wifi", "3g", "4g"}


def test_scenario_parameters_verbatim_from_paper():
    assert SCENARIOS["wan-wifi"]["latency_s"] == pytest.approx(0.060)
    assert SCENARIOS["3g"]["up_bw_bps"] == pytest.approx(0.38 * Mbps)
    assert SCENARIOS["3g"]["down_bw_bps"] == pytest.approx(0.09 * Mbps)
    assert SCENARIOS["4g"]["up_bw_bps"] == pytest.approx(48.97 * Mbps)
    assert SCENARIOS["4g"]["down_bw_bps"] == pytest.approx(7.64 * Mbps)


def test_make_link_unknown_scenario():
    with pytest.raises(KeyError, match="unknown scenario"):
        make_link("5g")


def test_scenario_ordering_lan_fastest():
    sizes = 100 * 1024
    times = {
        name: make_link(name).expected_transfer_time(sizes, "up")
        for name in scenario_names()
    }
    assert times["lan-wifi"] < times["wan-wifi"]
    assert times["4g"] < times["3g"]
    assert times["lan-wifi"] < times["3g"]


# ------------------------------------------------------------ TransferLog
def test_transfer_log_records_and_composes():
    log = TransferLog()
    log.record("mobile_code", 800, "up")
    log.record("file_param", 150, "up")
    log.record("control", 50, "up")
    log.record("result", 10, "down")
    assert log.total("up") == 1000
    assert log.total("down") == 10
    comp = log.composition("up")
    assert comp["mobile_code"] == pytest.approx(0.8)
    assert sum(comp.values()) == pytest.approx(1.0)


def test_transfer_log_empty_composition():
    assert TransferLog().composition() == {}


def test_transfer_log_merge():
    a, b = TransferLog(), TransferLog()
    a.record("control", 10, "up")
    b.record("control", 20, "up")
    b.record("result", 5, "down")
    a.merge(b)
    assert a.up_bytes["control"] == 30
    assert a.down_bytes["result"] == 5


def test_send_messages_attributes_bytes():
    env = Environment()
    link = Link("l", latency_s=0.01, up_bw_bps=100000, down_bw_bps=100000,
                handshake_rounds=1)
    log = TransferLog()
    msgs = [
        Message(kind="mobile_code", size_bytes=1000),
        Message(kind="control", size_bytes=100),
    ]

    def proc(env):
        elapsed = yield env.process(send_messages(env, link, msgs, "up", log))
        return elapsed

    elapsed = env.run(until=env.process(proc(env)))
    assert elapsed == pytest.approx(0.02 + 1100 / 100000)
    assert log.up_bytes == {"mobile_code": 1000, "control": 100}


def test_shared_medium_splits_bandwidth_fairly():
    # Fluid model: two simultaneous 1000-byte flows at 1000 B/s each
    # progress at 500 B/s and both finish at t=2.0 — same aggregate
    # throughput as serialization, but fair.
    env = Environment()
    link = Link("ap", latency_s=0.0, up_bw_bps=1000, down_bw_bps=1000,
                handshake_rounds=1, shared_medium=True)
    finish = []

    def send(env, i):
        yield env.process(link.transmit(env, 1000, "up"))
        finish.append((i, env.now))

    env.process(send(env, 0))
    env.process(send(env, 1))
    env.run()
    assert len(finish) == 2
    for _, t in finish:
        assert t == pytest.approx(2.0)


def test_unshared_medium_overlaps_transmissions():
    env = Environment()
    link = Link("p2p", latency_s=0.0, up_bw_bps=1000, down_bw_bps=1000,
                handshake_rounds=1)
    finish = []

    def send(env, i):
        yield env.process(link.transmit(env, 1000, "up"))
        finish.append(env.now)

    env.process(send(env, 0))
    env.process(send(env, 1))
    env.run()
    assert all(t == pytest.approx(1.0) for t in finish)


# ------------------------------------------------------------ fluid medium
def _shared_ap(**kw):
    kw.setdefault("latency_s", 0.0)
    kw.setdefault("up_bw_bps", 1000)
    kw.setdefault("down_bw_bps", 1000)
    kw.setdefault("handshake_rounds", 1)
    kw.setdefault("shared_medium", True)
    return Link("ap", **kw)


def test_concurrent_flows_finish_later_than_either_alone():
    def run_transfers(count):
        env = Environment()
        link = _shared_ap()
        finish = []

        def send(env):
            yield from link.transmit(env, 1000, "up")
            finish.append(env.now)

        for _ in range(count):
            env.process(send(env))
        env.run()
        return finish

    solo = run_transfers(1)
    contended = run_transfers(2)
    assert solo == [pytest.approx(1.0)]
    assert all(t > solo[0] for t in contended)


def test_fluid_model_staggered_arrivals():
    # A (2000 B) starts at t=0, B (500 B) joins at t=0.5 on a 1000 B/s
    # medium.  A runs alone for 0.5 s (500 B), shares 500 B/s with B for
    # 1 s until B drains at t=1.5, then finishes its last 1000 B alone
    # at t=2.5 — total bytes / capacity, with B served first (fair, not
    # starved behind the bigger earlier flow).
    env = Environment()
    link = _shared_ap()
    finish = {}

    def send(env, name, nbytes, start):
        yield env.timeout(start)
        yield from link.transmit(env, nbytes, "up")
        finish[name] = env.now

    env.process(send(env, "a", 2000, 0.0))
    env.process(send(env, "b", 500, 0.5))
    env.run()
    assert finish["b"] == pytest.approx(1.5)
    assert finish["a"] == pytest.approx(2.5)


def test_interrupted_flow_releases_medium():
    # Two equal flows split the medium; one is interrupted at t=0.5 and
    # must surrender its share — the survivor (750 B left) speeds back
    # up to full rate and finishes at t=1.25, not t=2.0.
    env = Environment()
    link = _shared_ap()
    finish = []

    def survivor(env):
        yield from link.transmit(env, 1000, "up")
        finish.append(env.now)

    def victim(env):
        try:
            yield from link.transmit(env, 1000, "up")
        except Interrupt:
            pass

    env.process(survivor(env))
    v = env.process(victim(env))

    def killer(env):
        yield env.timeout(0.5)
        v.interrupt("roaming away")

    env.process(killer(env))
    env.run()
    assert finish == [pytest.approx(1.25)]
    assert link.active_flows == 0


def test_wire_bytes_track_retransmissions():
    env = Environment()
    link = Link("l", latency_s=0.0, up_bw_bps=1e6, down_bw_bps=1e6,
                loss_rate=0.2, rng=np.random.default_rng(3))
    env.run(until=env.process(link.transmit(env, 100 * 1500, "up")))
    assert link.bytes_up == 100 * 1500  # goodput: what the app asked for
    assert link.wire_bytes_up > link.bytes_up  # wire: plus retransmissions
    assert link.wire_bytes_down == link.bytes_down == 0


def test_flowlink_always_shared():
    env = Environment()
    link = FlowLink("ap", latency_s=0.0, up_bw_bps=1000, down_bw_bps=1000,
                    handshake_rounds=1)
    assert link.shared_medium
    assert link.active_flows == 0
    peak = []

    def send(env):
        yield from link.transmit(env, 1000, "up")
        peak.append(link.active_flows)

    env.process(send(env))
    env.process(send(env))

    def probe(env):
        yield env.timeout(0.5)
        peak.append(link.active_flows)

    env.process(probe(env))
    env.run()
    assert max(peak) == 2
    assert link.active_flows == 0


def test_fluid_channel_zero_byte_flow_completes_immediately():
    env = Environment()
    channel = FluidChannel(env)
    flow = channel.add(0, 1000)
    assert flow.done.triggered
    assert channel.active_flows == 0
    # Cancelling a flow that is not in the channel is a no-op.
    channel.cancel(flow)
    assert channel.active_flows == 0
