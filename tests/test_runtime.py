"""Tests for the runtime environments (AndroidVM, CloudAndroidContainer)."""

import pytest

from repro.android import customize_os, build_android_image
from repro.hostos import CloudServer
from repro.runtime import (
    CAC_MEMORY_MB,
    CAC_NONOPT_DISK_BYTES,
    CAC_NONOPT_MEMORY_MB,
    CAC_PRIVATE_BYTES,
    AndroidVM,
    CloudAndroidContainer,
    RuntimeError_,
    RuntimeState,
    VM_DISK_BYTES,
    VM_MEMORY_MB,
)
from repro.sim import Environment

MB = 1024 * 1024


@pytest.fixture
def server():
    env = Environment()
    return CloudServer(env)


@pytest.fixture
def android_server():
    env = Environment()
    server = CloudServer(env)
    env.run(until=server.load_android_driver())
    return server


@pytest.fixture(scope="module")
def shared_base():
    return customize_os(build_android_image()).base_layer


# ------------------------------------------------------------------- VM
def test_vm_table1_footprints(server):
    vm = AndroidVM(server, "vm-1")
    assert vm.memory_mb == 512.0
    assert vm.disk_bytes == pytest.approx(1126.4 * MB, abs=1)
    assert vm.cpu_speed_factor < 1.0
    assert vm.io_overhead > 1.0


def test_vm_boot_reserves_resources(server):
    env = server.env
    vm = AndroidVM(server, "vm-1")
    assert vm.state is RuntimeState.CREATED
    env.run(until=env.process(vm.boot()))
    assert vm.state is RuntimeState.READY
    assert vm.setup_time == pytest.approx(28.72, rel=0.02)
    assert server.memory.reserved_mb == 512.0
    assert server.disk.bytes_stored == VM_DISK_BYTES
    vm.stop()
    assert server.memory.reserved_mb == 0
    assert server.disk.bytes_stored == 0


def test_vm_offload_io_is_exclusive_hdd(server):
    vm = AndroidVM(server, "vm-1")
    assert vm.offload_io_device() is server.disk
    assert vm.offload_io_overhead() == pytest.approx(1.6)


def test_runtime_lifecycle_violations(server):
    env = server.env
    vm = AndroidVM(server, "vm-1")
    env.run(until=env.process(vm.boot()))
    # Booting twice is rejected.
    with pytest.raises(RuntimeError_):
        env.run(until=env.process(vm.boot()))
    vm.stop()
    with pytest.raises(RuntimeError_):
        vm.stop()


def test_runtime_stop_before_boot_is_clean(server):
    # A CREATED runtime holds no resources; stopping it is a no-op
    # transition and booting afterwards is rejected.
    env = server.env
    vm = AndroidVM(server, "vm-1")
    vm.stop()
    assert vm.state is RuntimeState.STOPPED
    assert server.memory.reserved_mb == 0
    with pytest.raises(RuntimeError_):
        env.run(until=env.process(vm.boot()))


def test_runtime_code_residency(server):
    vm = AndroidVM(server, "vm-1")
    assert not vm.has_app("ocr")
    vm.mark_loaded("ocr")
    assert vm.has_app("ocr")


# ------------------------------------------------------------ containers
def test_container_requires_android_kernel(server, shared_base):
    with pytest.raises(RuntimeError_, match="Android Container Driver"):
        CloudAndroidContainer(server, "cac-1", optimized=True, shared_base=shared_base)


def test_optimized_container_requires_shared_base(android_server):
    with pytest.raises(ValueError, match="Shared Resource Layer"):
        CloudAndroidContainer(android_server, "cac-1", optimized=True)


def test_container_table1_footprints(android_server, shared_base):
    opt = CloudAndroidContainer(
        android_server, "cac-1", optimized=True, shared_base=shared_base
    )
    assert opt.memory_mb == CAC_MEMORY_MB == 96.0
    assert opt.disk_bytes == CAC_PRIVATE_BYTES == int(7.1 * MB)
    non = CloudAndroidContainer(android_server, "cac-2", optimized=False)
    assert non.memory_mb == CAC_NONOPT_MEMORY_MB == 128.0
    assert non.disk_bytes == CAC_NONOPT_DISK_BYTES == int(1045 * MB)


def test_container_boot_times(android_server, shared_base):
    env = android_server.env
    opt = CloudAndroidContainer(
        android_server, "cac-1", optimized=True, shared_base=shared_base
    )
    env.run(until=env.process(opt.boot()))
    assert opt.setup_time == pytest.approx(1.75, rel=0.05)
    non = CloudAndroidContainer(android_server, "cac-2", optimized=False)
    env.run(until=env.process(non.boot()))
    assert non.setup_time == pytest.approx(6.80, rel=0.05)


def test_container_near_native_cpu_and_io(android_server, shared_base):
    cac = CloudAndroidContainer(
        android_server, "cac-1", optimized=True, shared_base=shared_base
    )
    assert cac.cpu_speed_factor == 1.0
    assert cac.offload_io_overhead() == 1.0


def test_optimized_container_uses_tmpfs_for_offload_io(android_server, shared_base):
    opt = CloudAndroidContainer(
        android_server, "cac-1", optimized=True, shared_base=shared_base
    )
    assert opt.offload_io_device() is android_server.tmpfs
    non = CloudAndroidContainer(android_server, "cac-2", optimized=False)
    assert non.offload_io_device() is android_server.disk


def test_container_refs_driver_modules(android_server, shared_base):
    env = android_server.env
    cac = CloudAndroidContainer(
        android_server, "cac-1", optimized=True, shared_base=shared_base
    )
    env.run(until=env.process(cac.boot()))
    assert android_server.kernel.get_module("binder_linux").refcount == 1
    # Running container pins the modules.
    assert android_server.unload_android_driver() == []
    cac.stop()
    assert android_server.kernel.get_module("binder_linux").refcount == 0
    removed = android_server.unload_android_driver()
    assert "binder_linux" in removed


def test_container_device_namespace_lifecycle(android_server, shared_base):
    env = android_server.env
    cac = CloudAndroidContainer(
        android_server, "cac-1", optimized=True, shared_base=shared_base
    )
    env.run(until=env.process(cac.boot()))
    assert cac.device_namespace is not None
    assert "/dev/binder" in cac.device_namespace.open_paths()
    cac.binder_transaction()
    assert cac.device_namespace.state_of("/dev/binder").ioctl_count == 1
    cac.stop()
    assert cac.device_namespace is None


def test_container_binder_isolated_between_containers(android_server, shared_base):
    env = android_server.env
    c1 = CloudAndroidContainer(android_server, "c1", optimized=True, shared_base=shared_base)
    c2 = CloudAndroidContainer(android_server, "c2", optimized=True, shared_base=shared_base)
    env.run(until=env.all_of([env.process(c1.boot()), env.process(c2.boot())]))
    c1.binder_transaction()
    c1.binder_transaction()
    assert c1.device_namespace.state_of("/dev/binder").ioctl_count == 2
    assert c2.device_namespace.state_of("/dev/binder").ioctl_count == 0


def test_container_rootfs_shares_base_layer(android_server, shared_base):
    c1 = CloudAndroidContainer(android_server, "c1", optimized=True, shared_base=shared_base)
    c2 = CloudAndroidContainer(android_server, "c2", optimized=True, shared_base=shared_base)
    # Both resolve the same physical file from the shared layer.
    path = shared_base.paths()[0]
    assert c1.rootfs.resolve(path) is c2.rootfs.resolve(path)
    # Writes stay private (COW).
    c1.rootfs.write("/data/local.prop", 100)
    assert not c2.rootfs.exists("/data/local.prop")


def test_memory_density_vm_vs_container(android_server, shared_base):
    env = android_server.env
    # Table I implication: 75 % memory saved -> >4x more containers fit.
    assert int(16 * 1024 / VM_MEMORY_MB) * 4 <= int(16 * 1024 / CAC_MEMORY_MB) + 1
