"""Tests for warehouse, container DB, scheduler, shared layer, access control."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.android import build_android_image, customize_os
from repro.hostos import CloudServer
from repro.platform import (
    AppWarehouse,
    ContainerDB,
    MonitorScheduler,
    OffloadingIOLayer,
    RequestAccessController,
    SharedResourceLayer,
)
from repro.platform.access import FORBIDDEN_OPERATIONS
from repro.runtime import AndroidVM
from repro.sim import Environment

MB = 1024 * 1024


# -------------------------------------------------------------- warehouse
def test_warehouse_miss_then_hit():
    wh = AppWarehouse()
    assert wh.lookup("ocr") is None
    assert wh.misses == 1
    wh.store("ocr", 1_400_000, now=5.0)
    entry = wh.lookup("ocr")
    assert entry is not None
    assert entry.aid == "ocr"
    assert entry.hits == 1
    assert wh.hit_rate == pytest.approx(0.5)


def test_warehouse_reference_stable_and_distinct():
    wh = AppWarehouse()
    assert wh.reference_for("ocr") == wh.reference_for("ocr")
    assert wh.reference_for("ocr") != wh.reference_for("chess")
    assert wh.reference_for("ocr", "op1") != wh.reference_for("ocr", "op2")


def test_warehouse_duplicate_store_rejected():
    wh = AppWarehouse()
    wh.store("ocr", 100)
    with pytest.raises(ValueError):
        wh.store("ocr", 100)


def test_warehouse_negative_size_rejected():
    with pytest.raises(ValueError):
        AppWarehouse().store("x", -1)


def test_warehouse_cid_mapping():
    wh = AppWarehouse()
    wh.store("chess", 2_130_000)
    wh.register_execution("chess", "cid-1")
    wh.register_execution("chess", "cid-2")
    wh.register_execution("chess", "cid-1")  # idempotent
    assert wh.containers_for("chess") == ["cid-1", "cid-2"]
    assert wh.lookup("chess").index == 2
    assert wh.containers_for("ghost") == []


def test_warehouse_register_unknown_app_rejected():
    with pytest.raises(KeyError):
        AppWarehouse().register_execution("ghost", "cid-1")


def test_warehouse_evict():
    wh = AppWarehouse()
    wh.store("ocr", 100)
    wh.evict("ocr")
    assert not wh.has_code("ocr")
    assert wh.lookup("ocr") is None
    with pytest.raises(KeyError):
        wh.evict("ocr")


def test_warehouse_lru_eviction_order():
    # Capacity fits three entries; touching "a" must spare it so the
    # least-recently-used "b" is evicted first, then "c".
    wh = AppWarehouse(capacity_bytes=300)
    wh.store("a", 100)
    wh.store("b", 100)
    wh.store("c", 100)
    assert wh.lookup("a") is not None  # refresh "a"
    wh.store("d", 100)  # evicts "b"
    assert wh.has_code("a") and wh.has_code("c") and wh.has_code("d")
    assert not wh.has_code("b")
    assert wh.evictions == 1
    wh.store("e", 200)  # evicts "c" then "a" (in LRU order)
    assert not wh.has_code("c") and not wh.has_code("a")
    assert wh.has_code("d") and wh.has_code("e")
    assert wh.evictions == 3
    assert wh.total_code_bytes() == 300


def test_warehouse_total_bytes_and_len():
    wh = AppWarehouse()
    wh.store("a", 100)
    wh.store("b", 200)
    assert wh.total_code_bytes() == 300
    assert len(wh) == 2


@given(st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=6), unique=True,
                max_size=20))
def test_warehouse_property_store_then_always_hit(apps):
    wh = AppWarehouse()
    for app in apps:
        assert wh.lookup(app) is None
        wh.store(app, 10)
    for app in apps:
        assert wh.lookup(app) is not None
    # misses == number of distinct apps, hits cover the second sweep.
    assert wh.misses == len(apps)


# ------------------------------------------------------------ container db
def _server():
    env = Environment()
    return CloudServer(env)


def test_db_register_and_queries():
    server = _server()
    db = ContainerDB()
    vm = AndroidVM(server, db.new_cid())
    rec = db.register(vm, owner_device="device-0", now=1.0)
    assert db.exists(rec.cid)
    assert db.get(rec.cid) is rec
    assert db.by_device("device-0") == [rec]
    assert len(db) == 1
    with pytest.raises(ValueError):
        db.register(vm)
    with pytest.raises(KeyError):
        db.get("cid-999")


def test_db_with_app_requires_ready_runtime():
    server = _server()
    env = server.env
    db = ContainerDB()
    vm = AndroidVM(server, db.new_cid())
    db.register(vm)
    vm.mark_loaded("ocr")
    assert db.with_app("ocr") == []  # not booted yet
    env.run(until=env.process(vm.boot()))
    assert len(db.with_app("ocr")) == 1


def test_db_request_accounting():
    server = _server()
    db = ContainerDB()
    vm = AndroidVM(server, db.new_cid())
    rec = db.register(vm)
    db.begin_request(rec.cid)
    db.begin_request(rec.cid)
    assert rec.active_requests == 2
    assert rec.total_requests == 2
    db.end_request(rec.cid)
    assert rec.active_requests == 1
    db.end_request(rec.cid)
    with pytest.raises(ValueError):
        db.end_request(rec.cid)


def test_db_resource_totals_follow_lifecycle():
    server = _server()
    env = server.env
    db = ContainerDB()
    vm = AndroidVM(server, db.new_cid())
    db.register(vm)
    assert db.total_memory_mb() == 0  # CREATED not counted
    env.run(until=env.process(vm.boot()))
    assert db.total_memory_mb() == 512.0
    vm.stop()
    assert db.total_memory_mb() == 0


# --------------------------------------------------------------- scheduler
def test_scheduler_tracks_concurrency():
    server = _server()
    env = server.env
    db = ContainerDB()
    sched = MonitorScheduler(env, db)
    vm = AndroidVM(server, db.new_cid())
    rec = db.register(vm)
    sched.request_started(rec.cid)
    sched.request_started(rec.cid)
    assert sched.active_requests == 2
    assert sched.peak_active == 2
    sched.request_finished(rec.cid)
    assert sched.active_requests == 1


def test_scheduler_picks_least_loaded():
    server = _server()
    env = server.env
    db = ContainerDB()
    sched = MonitorScheduler(env, db)
    vms = [AndroidVM(server, db.new_cid()) for _ in range(3)]
    recs = [db.register(vm) for vm in vms]
    for vm in vms:
        env.run(until=env.process(vm.boot()))
    sched.request_started(recs[0].cid)
    sched.request_started(recs[0].cid)
    sched.request_started(recs[1].cid)
    pick = sched.pick_least_loaded(recs)
    assert pick is recs[2]
    assert sched.pick_least_loaded([]) is None


def test_scheduler_tie_break_prefers_warmer():
    server = _server()
    env = server.env
    db = ContainerDB()
    sched = MonitorScheduler(env, db)
    vms = [AndroidVM(server, db.new_cid()) for _ in range(2)]
    recs = [db.register(vm) for vm in vms]
    for vm in vms:
        env.run(until=env.process(vm.boot()))
    recs[1].total_requests = 5
    assert sched.pick_least_loaded(recs) is recs[1]


# ------------------------------------------------------------ shared layer
def test_offloading_io_layer_stage_and_burn():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    io.stage("req-1", 1000, now=1.0)
    io.stage("req-2", 500)
    assert io.resident_bytes == 1500
    assert server.tmpfs.bytes_stored == 1500
    assert io.staged_requests() == ["req-1", "req-2"]
    assert io.burn("req-1") == 1000
    assert io.resident_bytes == 500
    assert server.tmpfs.bytes_stored == 500
    assert io.total_staged == 1500
    assert io.total_burned == 1000


def test_offloading_io_layer_validation():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    with pytest.raises(ValueError):
        io.stage("r", -1)
    io.stage("r", 10)
    with pytest.raises(ValueError):
        io.stage("r", 10)
    with pytest.raises(KeyError):
        io.burn("ghost")


def test_offloading_io_zero_byte_requests():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    io.stage("r", 0)
    assert io.burn("r") == 0


def test_offloading_io_dedup_shares_physical_copy():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    assert io.stage("req-1", 1000, digest="sig-db") is True  # materialized
    assert io.stage("req-2", 1000, digest="sig-db") is False  # hit
    assert io.resident_bytes == 1000  # one physical copy
    assert server.tmpfs.bytes_stored == 1000
    assert io.total_staged == 2000  # logical accounting is per request
    assert io.dedup_hits == 1
    assert io.dedup_bytes_saved == 1000
    assert io.layer.nlink("/offload/sig-db") == 2


def test_offloading_io_dedup_frees_on_last_burn():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    io.stage("req-1", 1000, digest="sig-db")
    io.stage("req-2", 1000, digest="sig-db")
    assert io.burn("req-1") == 1000
    # First burn drops a reference, not the bytes.
    assert io.resident_bytes == 1000
    assert server.tmpfs.bytes_stored == 1000
    assert io.layer.nlink("/offload/sig-db") == 1
    assert io.burn("req-2") == 1000
    assert io.resident_bytes == 0
    assert server.tmpfs.bytes_stored == 0
    assert io.layer.nlink("/offload/sig-db") == 0
    assert io.total_burned == io.total_staged == 2000


def test_offloading_io_digest_size_mismatch_rejected():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    io.stage("a", 1000, digest="d")
    with pytest.raises(ValueError, match="digest"):
        io.stage("b", 999, digest="d")


def test_offloading_io_without_digest_stays_private():
    server = _server()
    io = OffloadingIOLayer(server.tmpfs)
    io.stage("a", 1000)
    io.stage("b", 1000)  # same size, but no digest: never shared
    assert io.resident_bytes == 2000
    assert io.dedup_hits == 0
    assert io.dedup_bytes_saved == 0


def test_shared_resource_layer_accounts_base_once():
    server = _server()
    custom = customize_os(build_android_image())
    srl = SharedResourceLayer(server, custom)
    assert server.disk.bytes_stored == srl.base_bytes
    assert srl.base_bytes == pytest.approx(274 * MB, abs=1)
    # Fleet disk: Table I — one base + N x 7.1 MB.
    fleet = srl.fleet_disk_bytes(int(7.1 * MB), 10)
    assert fleet == srl.base_bytes + 10 * int(7.1 * MB)
    # vs 10 full VM images (1.1 GB each): >= 79 % saved.
    assert 1 - fleet / (10 * 1126.4 * MB) >= 0.79
    srl.release()
    assert server.disk.bytes_stored == 0
    srl.release()  # idempotent
    with pytest.raises(ValueError):
        srl.fleet_disk_bytes(-1, 1)


# ------------------------------------------------------------------ access
def test_access_admit_generates_table_once():
    ac = RequestAccessController()
    d1 = ac.admit("ocr", now=1.0)
    assert d1.allowed
    assert ac.analyses == 1
    assert not ac.analysis_needed("ocr")
    ac.admit("ocr")
    assert ac.analyses == 1  # shared table, analyzed once
    table = ac.table_for("ocr")
    assert table.allows("cpu.execute")
    assert not table.allows("kernel.module_load")


def test_access_violations_block_after_threshold():
    ac = RequestAccessController(violation_threshold=3)
    ac.admit("malware")
    for i in range(2):
        decision = ac.filter_operation("malware", "devns.escape")
        assert not decision.allowed
        assert not ac.is_blocked("malware")
    decision = ac.filter_operation("malware", "warehouse.poison")
    assert not decision.allowed
    assert ac.is_blocked("malware")
    assert ac.blocked_apps() == ["malware"]
    # Subsequent requests from this app are refused at admission.
    assert not ac.admit("malware").allowed


def test_access_granted_operations_pass():
    ac = RequestAccessController()
    ac.admit("ocr")
    assert ac.filter_operation("ocr", "cpu.execute").allowed
    assert ac.filter_operation("ocr", "fs.offload_read").allowed
    assert ac.table_for("ocr").violations == 0


def test_access_ungranted_known_permission_is_violation():
    ac = RequestAccessController()
    ac.admit("ocr", requested_permissions=frozenset({"cpu.execute"}))
    assert not ac.filter_operation("ocr", "net.outbound").allowed
    assert ac.table_for("ocr").violations == 1


def test_access_filter_without_admit_rejected():
    ac = RequestAccessController()
    with pytest.raises(KeyError):
        ac.filter_operation("ghost", "cpu.execute")


def test_access_unblock_resets():
    ac = RequestAccessController(violation_threshold=1)
    ac.admit("app")
    ac.filter_operation("app", "devns.escape")
    assert ac.is_blocked("app")
    ac.unblock("app")
    assert not ac.is_blocked("app")
    assert ac.table_for("app").violations == 0
    assert ac.admit("app").allowed


def test_access_validation():
    with pytest.raises(ValueError):
        RequestAccessController(violation_threshold=0)
    with pytest.raises(ValueError):
        RequestAccessController(analysis_time_s=-1)


def test_forbidden_operations_never_grantable():
    ac = RequestAccessController()
    ac.admit("sneaky", requested_permissions=FORBIDDEN_OPERATIONS)
    table = ac.table_for("sneaky")
    for op in FORBIDDEN_OPERATIONS:
        assert not table.allows(op)


def test_warehouse_capacity_lru_eviction():
    wh = AppWarehouse(capacity_bytes=1000)
    wh.store("a", 400)
    wh.store("b", 400)
    wh.lookup("a")  # a becomes most-recently-used
    wh.store("c", 400)  # evicts b (LRU)
    assert wh.has_code("a") and wh.has_code("c")
    assert not wh.has_code("b")
    assert wh.evictions == 1
    assert wh.total_code_bytes() <= 1000


def test_warehouse_oversized_entry_rejected():
    wh = AppWarehouse(capacity_bytes=100)
    with pytest.raises(ValueError, match="exceeds"):
        wh.store("big", 200)
    with pytest.raises(ValueError):
        AppWarehouse(capacity_bytes=0)


def test_warehouse_eviction_forces_reupload_end_to_end():
    from repro.network import make_link
    from repro.offload import OffloadRequest
    from repro.platform import RattrapPlatform
    from repro.sim import Environment
    from repro.workloads import CHESS_GAME

    env = Environment()
    plat = RattrapPlatform(env)
    # Tiny warehouse: ChessGame's 2.1 MB code fits, nothing else with it.
    plat.warehouse = AppWarehouse(capacity_bytes=3 * 1024 * 1024)
    plat.dispatcher.warehouse = plat.warehouse
    link = make_link("lan-wifi")
    r1 = env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    assert not r1.code_cache_hit
    plat.warehouse.evict("chess")
    r2 = env.run(until=plat.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link))
    assert not r2.code_cache_hit  # had to re-upload after eviction
