"""Tests for the Android image model, profiler and OS customization.

The headline assertions check that the synthetic image reproduces the
§III-E measurements *exactly by construction*.
"""

import pytest

from repro.android import (
    ANDROID_44_CATEGORIES,
    AccessProfiler,
    CategorySpec,
    build_android_image,
    customize_os,
    redundancy_report,
)

MB = 1024 * 1024


@pytest.fixture(scope="module")
def image():
    return build_android_image()


def test_total_size_is_1_1_gb(image):
    assert image.total_bytes == pytest.approx(1126.4 * MB, abs=1)


def test_system_folder_is_985_mb(image):
    assert image.system_bytes == pytest.approx(985 * MB, abs=1)
    assert image.system_bytes / image.total_bytes == pytest.approx(0.874, abs=0.001)


def test_redundant_category_counts_match_paper(image):
    # §IV-B3: 20 built-in apps, 197 .so, 4372 .ko, 396 .bin.
    assert image.category_count("builtin_app") == 20
    assert image.category_count("shared_lib_unused") == 197
    assert image.category_count("kernel_module") == 4372
    assert image.category_count("firmware") == 396


def test_category_bytes_sum_exactly(image):
    for cat in ANDROID_44_CATEGORIES:
        assert image.category_bytes(cat.name) == int(cat.total_mb * MB)


def test_accessed_fraction_is_31_6_percent(image):
    # "only 31.6% of the entire Android OS is actually needed" — the
    # paper's measure counts everything with an atime (boot + offload).
    accessed = image.total_bytes - image.redundant_bytes
    assert accessed / image.total_bytes == pytest.approx(0.316, abs=0.002)


def test_container_image_sizes_match_table1(image):
    # Non-optimized CAC rootfs: full OS minus kernel/ramdisk = 1.02 GB.
    assert image.container_image_bytes(optimized=False) == pytest.approx(
        1045 * MB, abs=1
    )
    # Optimized (customized) OS: needed categories only, 254 + 20 = 274 MB.
    assert image.container_image_bytes(optimized=True) == pytest.approx(274 * MB, abs=1)


def test_category_spec_validation():
    with pytest.raises(ValueError):
        CategorySpec("x", "/x", "", 0, 1.0)
    with pytest.raises(ValueError):
        CategorySpec("x", "/x", "", 1, 0.0)


def test_file_sizes_spread_sums_exactly(image):
    nodes = image.files_in_category("kernel_module")
    assert sum(n.size for n in nodes) == int(140.0 * MB)
    sizes = {n.size for n in nodes}
    assert len(sizes) <= 2  # near-uniform split


# ------------------------------------------------------------------ profiler
def test_profiler_reproduces_section_3e():
    img = build_android_image()
    prof = AccessProfiler(img)
    prof.simulate_boot()
    prof.simulate_offloading()
    report = redundancy_report(img)
    # 771 MB out of 1.1 GB never accessed = 68.4 %.
    assert report.never_accessed_bytes == pytest.approx(771 * MB, abs=1)
    assert report.never_accessed_fraction == pytest.approx(0.684, abs=0.001)
    assert report.system_fraction == pytest.approx(0.874, abs=0.001)
    assert report.redundant_counts["builtin_app"] == 20
    assert report.redundant_counts["shared_lib_unused"] == 197
    assert report.redundant_counts["kernel_module"] == 4372
    assert report.redundant_counts["firmware"] == 396


def test_profiler_boot_only_leaves_offload_files_untouched():
    img = build_android_image()
    AccessProfiler(img).simulate_boot()
    report = redundancy_report(img)
    # Framework is needed by offloading but not read during boot.
    framework = img.files_in_category("framework")
    assert all(n.atime is None for n in framework)
    assert report.accessed_bytes < img.needed_bytes


def test_unprofiled_image_is_fully_never_accessed():
    img = build_android_image()
    report = redundancy_report(img)
    assert report.never_accessed_bytes == report.total_bytes
    assert report.accessed_bytes == 0


def test_report_rows_render():
    img = build_android_image()
    prof = AccessProfiler(img)
    prof.simulate_boot()
    prof.simulate_offloading()
    rows = dict(redundancy_report(img).rows())
    assert rows["never accessed (%)"] == 68.4
    assert rows["/system share of OS (%)"] == 87.4
    assert rows["redundant .ko kernel modules"] == 4372


# ------------------------------------------------------------- customization
def test_customized_os_keeps_only_needed(image):
    custom = customize_os(image)
    assert custom.size_bytes == image.container_image_bytes(optimized=True)
    assert custom.report.kept_fraction == pytest.approx(254 / 1126.4 + 20 / 1126.4, abs=0.01)
    # Everything kept is offload-needed.
    for node in custom.base_layer.files():
        assert image.categories[node.category].needed_for_offload


def test_customized_os_strips_the_redundancies(image):
    custom = customize_os(image)
    by_cat = custom.report.stripped_by_category
    assert by_cat["builtin_app"] == 20
    assert by_cat["shared_lib_unused"] == 197
    assert by_cat["kernel_module"] == 4372
    assert by_cat["firmware"] == 396
    assert custom.report.stripped_bytes + custom.report.kept_bytes == image.total_bytes


def test_customized_layer_is_sealed(image):
    custom = customize_os(image)
    assert custom.base_layer.read_only


def test_customized_os_clones_are_independent(image):
    custom = customize_os(image)
    node = next(iter(custom.base_layer.files()))
    node.touch(1.0)
    original = image.layer.get(node.path)
    assert original.atime is None
