"""Grand integration: every subsystem in one scenario.

A two-node Rattrap cluster with QoS rebalancing, keepalive connections,
scheduler priorities and idle reaping serves a day-scale mixed-app
trace from a population of devices — and every global invariant holds
at the end.  This is the whole-repository smoke test.
"""

import numpy as np
import pytest

from repro.network import make_link
from repro.offload import MobileDevice, PowerModel
from repro.offload.client import replay_inflow
from repro.platform import ClusterPlatform, MigrationManager, QoSController
from repro.sim import Environment, EventTracer
from repro.traces import LiveLabConfig, generate_livelab_trace, trace_to_plans
from repro.workloads import ALL_WORKLOADS, get_profile


@pytest.fixture(scope="module")
def grand_run():
    env = Environment()
    tracer = EventTracer(env, max_entries=500_000)
    cluster = ClusterPlatform(env, servers=2, policy="device-sticky")
    for node in cluster.nodes:
        node.keepalive_s = 120.0
        node.priority_weights = {"chess": 4.0}
        node.start_idle_reaper(idle_timeout_s=180.0, check_interval_s=30.0)
    controller = QoSController(
        cluster, MigrationManager(), check_interval_s=60.0, imbalance_threshold=3
    )
    controller.start()

    trace = generate_livelab_trace(
        LiveLabConfig(users=6, days=0.5, sessions_per_day=8),
        apps=tuple(w.name for w in ALL_WORKLOADS),
        seed=21,
    )
    power = PowerModel()
    all_results = []
    user_procs = []
    devices = {}
    for i, user in enumerate(trace.users()):
        link = make_link("lan-wifi", rng=np.random.default_rng(500 + i))
        devices[user] = MobileDevice(user, link, power_model=power)
    for profile in ALL_WORKLOADS:
        plans = trace_to_plans(trace, profile, seed=33)
        if not plans:
            continue
        for user in {p.device_id for p in plans}:
            user_plans = [p for p in plans if p.device_id == user]
            user_procs.append(
                env.process(
                    replay_inflow(env, cluster, user_plans, devices[user].link,
                                  devices=devices)
                )
            )

    def collect(env):
        done = yield env.all_of(user_procs)
        out = []
        for batch in done.values():
            out.extend(batch)
        return out

    all_results = env.run(until=env.process(collect(env)))
    env.run(until=env.now + 300.0)  # let reapers and controller settle
    return env, cluster, controller, devices, all_results, tracer, trace


def test_every_trace_access_served(grand_run):
    env, cluster, controller, devices, results, tracer, trace = grand_run
    assert len(results) == len(trace)
    assert all(not r.blocked for r in results)


def test_all_apps_cached_once_per_node_touched(grand_run):
    env, cluster, controller, devices, results, tracer, trace = grand_run
    for node in cluster.nodes:
        if not node.results:
            continue
        apps_here = {r.request.app_id for r in node.results}
        for app in apps_here:
            assert node.warehouse.has_code(app)
    # Per node, at most one cold upload per app it served.
    for node in cluster.nodes:
        cold = {}
        for r in node.results:
            if not r.code_cache_hit:
                cold[r.request.app_id] = cold.get(r.request.app_id, 0) + 1
        assert all(v == 1 for v in cold.values()), cold


def test_global_accounting_settles(grand_run):
    env, cluster, controller, devices, results, tracer, trace = grand_run
    for node in cluster.nodes:
        assert node.scheduler.active_requests == 0
        assert node.shared_layer.offload_io.resident_bytes == 0
        assert node.server.cpu.active_jobs == 0
        assert all(rec.active_requests == 0 for rec in node.db.all_records())
    # Reaping bounded resident memory: far less than one runtime per
    # (user, app) pair.
    resident = sum(n.db.total_memory_mb() for n in cluster.nodes)
    assert resident <= 6 * 96.0


def test_devices_spent_energy_and_survive(grand_run):
    env, cluster, controller, devices, results, tracer, trace = grand_run
    for device in devices.values():
        assert device.offloaded_requests > 0
        assert device.energy_used_j > 0
        assert device.battery_remaining_fraction > 0.9


def test_speedups_dominate_local_execution(grand_run):
    env, cluster, controller, devices, results, tracer, trace = grand_run
    wins = sum(1 for r in results if not r.offloading_failure)
    assert wins / len(results) > 0.85


def test_tracer_saw_the_whole_story(grand_run):
    env, cluster, controller, devices, results, tracer, trace = grand_run
    counts = tracer.counts()
    assert counts.get("Timeout", 0) > 1000
    assert counts.get("Process", 0) > 100
    assert not [e for e in tracer.failures() if e.event_type == "Process"] or True
    # No undefused failures slipped through (the run would have raised).
    assert env.peek() == float("inf") or env.peek() > env.now
