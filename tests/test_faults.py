"""Fault-injection subsystem tests: plans, the injector, and the
recovery invariants (every crash releases its scheduler slot and
memory; dead boot records are evicted; outages refuse work cleanly)."""

import pytest

from repro.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    NodeDown,
    RuntimeCrashed,
)
from repro.network import make_link
from repro.offload import MobileDevice, OffloadRequest, replay_with_retry
from repro.platform import RattrapPlatform
from repro.runtime.base import RuntimeState
from repro.sim import Environment, Interrupt
from repro.workloads import CHESS_GAME, generate_inflow


# ---------------------------------------------------------------- fault plans
def test_fault_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault("meteor-strike", at_s=1.0)
    with pytest.raises(ValueError, match="at_s"):
        Fault("runtime-crash", at_s=-1.0)
    with pytest.raises(ValueError, match="duration_s"):
        Fault("node-outage", at_s=1.0, duration_s=-1.0)
    with pytest.raises(ValueError, match="node"):
        Fault("runtime-crash", at_s=1.0, node=-1)
    with pytest.raises(ValueError, match="positive duration"):
        Fault("link-blackout", at_s=1.0, duration_s=0.0)


def test_fault_plan_constructors():
    plan = FaultPlan.runtime_crashes(times=(1.0, 2.0), nodes=(0, 1), seed=7)
    assert len(plan) == 2
    assert plan.seed == 7
    assert [f.node for f in plan.faults] == [0, 1]
    outage = FaultPlan.single_node_outage(node=1, at_s=5.0, duration_s=3.0)
    assert outage.faults[0].kind == "node-outage"
    dark = FaultPlan.link_blackout(None, at_s=2.0, duration_s=1.0)
    assert dark.faults[0].device_id is None


def test_injector_rejects_out_of_range_node():
    env = Environment()
    platform = RattrapPlatform(env)
    plan = FaultPlan.runtime_crashes(times=(1.0,), nodes=(2,))
    with pytest.raises(ValueError, match="only 1 node"):
        FaultInjector(env, plan).attach(platform)


def test_injector_skips_when_nothing_to_crash():
    env = Environment()
    platform = RattrapPlatform(env)
    injector = FaultInjector(env, FaultPlan.runtime_crashes(times=(1.0,))).attach(
        platform
    )
    env.run()
    assert injector.skipped == 1
    assert injector.injected == []


def test_link_blackout_window_answers_client_probe():
    env = Environment()
    platform = RattrapPlatform(env)
    plan = FaultPlan.link_blackout("device-0", at_s=1.0, duration_s=2.0)
    injector = FaultInjector(env, plan).attach(platform)
    assert env.faults is injector
    env.run(until=env.timeout(1.5))
    assert injector.link_down("device-0")
    assert not injector.link_down("device-1")
    env.run(until=env.timeout(2.0))  # now 3.5 > blackout end at 3.0
    assert not injector.link_down("device-0")


def test_global_blackout_hits_every_device():
    env = Environment()
    platform = RattrapPlatform(env)
    plan = FaultPlan.link_blackout(None, at_s=0.5, duration_s=1.0)
    injector = FaultInjector(env, plan).attach(platform)
    env.run(until=env.timeout(1.0))
    assert injector.link_down("device-0")
    assert injector.link_down("anything-else")


# --------------------------------------------------------- crash invariants
def test_crash_ready_runtime_releases_memory():
    env = Environment()
    platform = RattrapPlatform(env)
    r = env.run(
        until=platform.submit(
            OffloadRequest(0, "d0", "chess", CHESS_GAME), make_link("lan-wifi")
        )
    )
    record = platform.db.get(r.executed_on)
    before = platform.server.memory.reserved_mb
    assert platform.crash_runtime(record.cid, reason="test")
    assert record.runtime.state is RuntimeState.CRASHED
    assert record.runtime.crash_reason == "test"
    assert platform.server.memory.reservation(record.cid) is None
    assert platform.server.memory.reserved_mb == pytest.approx(
        before - record.runtime.memory_mb
    )
    # Crashing a dead runtime is a no-op, never an error.
    assert not platform.crash_runtime(record.cid)
    assert not platform.crash_runtime("no-such-cid")


def test_crash_mid_request_releases_slot_and_memory():
    env = Environment()
    platform = RattrapPlatform(env)
    proc = platform.submit(
        OffloadRequest(0, "d0", "chess", CHESS_GAME), make_link("lan-wifi")
    )
    proc.defused = True
    victim = []

    def killer(env):
        yield env.timeout(3.0)  # boot done (1.75 s), request executing
        [record] = platform.db.all_records()
        victim.append(record)
        platform.crash_runtime(record.cid)

    env.process(killer(env))
    env.run()
    assert isinstance(proc.exception, Interrupt)
    assert isinstance(proc.exception.cause, RuntimeCrashed)
    assert platform.scheduler.active_requests == 0
    assert platform.server.memory.reservation(victim[0].cid) is None


def test_crash_during_boot_evicts_record_and_reboots():
    env = Environment()
    platform = RattrapPlatform(env)
    link = make_link("lan-wifi")
    p1 = platform.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link)
    p2 = platform.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link
    )
    dead = []

    def killer(env):
        yield env.timeout(0.5)  # container boot takes 1.75 s: still BOOTING
        [record] = platform.db.all_records()
        assert record.runtime.state is RuntimeState.BOOTING
        dead.append(record.cid)
        platform.crash_runtime(record.cid)

    env.process(killer(env))
    r1 = env.run(until=p1)
    r2 = env.run(until=p2)
    # Both the boot initiator and the piggybacked waiter recovered.
    assert not r1.blocked and not r2.blocked
    assert platform.dispatcher.cold_boots == 2
    # The dead record was evicted; only the replacement holds memory.
    assert not platform.db.exists(dead[0])
    assert platform.server.memory.reservation(dead[0]) is None
    assert len(platform.db) == 1
    assert platform.scheduler.active_requests == 0


def test_failed_node_refuses_work_until_restored():
    env = Environment()
    platform = RattrapPlatform(env)
    link = make_link("lan-wifi")
    r = env.run(
        until=platform.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link)
    )
    platform.fail_node("maintenance")
    # The live runtime died with its node, resources reclaimed.
    record = platform.db.get(r.executed_on)
    assert record.runtime.state is RuntimeState.CRASHED
    assert platform.server.memory.reservation(record.cid) is None
    # New submissions are refused while offline.
    p = platform.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link
    )
    p.defused = True
    env.run()
    assert isinstance(p.exception, NodeDown)
    # Restoration serves again (cold: the old runtime is gone).
    platform.restore_node()
    r2 = env.run(
        until=platform.submit(
            OffloadRequest(2, "d0", "chess", CHESS_GAME, seq_on_device=2), link
        )
    )
    assert not r2.blocked
    assert r2.executed_on != r.executed_on


def test_fail_node_is_idempotent():
    env = Environment()
    platform = RattrapPlatform(env)
    platform.fail_node()
    platform.fail_node()  # second call must not raise
    assert platform.offline
    platform.restore_node()
    assert not platform.offline


def test_injected_crashes_always_release_slots_and_memory():
    # The acceptance invariant: after a seeded crash campaign against a
    # live inflow, every crashed runtime's memory is back and no
    # scheduler slot leaks — while the retry client still serves
    # every request from the cloud.
    env = Environment()
    platform = RattrapPlatform(env)
    plan = FaultPlan.runtime_crashes(times=(4.0, 8.0, 12.0), seed=3)
    injector = FaultInjector(env, plan).attach(platform)
    plans = generate_inflow(
        CHESS_GAME, devices=4, requests_per_device=4, think_time_s=2.0, seed=3
    )
    devices = {
        f"device-{i}": MobileDevice(f"device-{i}", make_link("lan-wifi"))
        for i in range(4)
    }
    proc = env.process(replay_with_retry(env, platform, plans, devices, seed=3))
    results = env.run(until=proc)
    assert len(results) == 16
    assert injector.injected, "the campaign found no victim to crash"
    assert platform.scheduler.active_requests == 0
    crashed = [
        r
        for r in platform.db.all_records()
        if r.runtime.state is RuntimeState.CRASHED
    ]
    assert len(crashed) == len(injector.injected)
    for record in crashed:
        assert platform.server.memory.reservation(record.cid) is None
    live = [
        r for r in platform.db.all_records() if r.runtime.state is RuntimeState.READY
    ]
    assert platform.server.memory.reserved_mb == pytest.approx(
        sum(r.runtime.memory_mb for r in live)
    )


def test_injected_crash_campaign_is_deterministic():
    def campaign():
        env = Environment()
        platform = RattrapPlatform(env)
        plan = FaultPlan.runtime_crashes(times=(4.0, 8.0), seed=5)
        injector = FaultInjector(env, plan).attach(platform)
        plans = generate_inflow(
            CHESS_GAME, devices=3, requests_per_device=3, think_time_s=2.0, seed=5
        )
        devices = {
            f"device-{i}": MobileDevice(f"device-{i}", make_link("lan-wifi"))
            for i in range(3)
        }
        proc = env.process(replay_with_retry(env, platform, plans, devices, seed=5))
        results = env.run(until=proc)
        return (
            injector.injected,
            [(r.request.request_id, r.attempts, r.finished_at) for r in results],
        )

    assert campaign() == campaign()
