"""Per-tenant isolation: accounting ledger, enforcement, adversaries.

Covers the tenancy ledger and its metrics mirror, per-tenant airtime
fair share on the fluid channel (weighted and capped), residency quotas
with burn-on-over-quota, warm-pool reservation floors, the adversary
library, and the abuse experiment's smoke configuration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import abuse
from repro.faults import (
    Adversary,
    AirtimeHog,
    PermissionStorm,
    ResidencySquatter,
    ResourceExhausted,
    RetryAmplifier,
    WarmPoolSquatter,
)
from repro.hostos.server import CloudServer, ServerSpec
from repro.network.link import FluidChannel
from repro.obs import Observability
from repro.platform import (
    PredictiveConfig,
    RattrapPlatform,
    TenancyConfig,
    TenancyManager,
    attribution_from_snapshot,
    tenancy_of,
    top_offenders,
)
from repro.platform.shared_layer import OffloadingIOLayer
from repro.platform.tenancy import render_attribution
from repro.sim import Environment

BPS = 1_000_000.0
MB = 1024 * 1024


# ------------------------------------------------------------------ config
def test_tenancy_config_validation():
    with pytest.raises(ValueError):
        TenancyConfig(airtime_cap=0.0)
    with pytest.raises(ValueError):
        TenancyConfig(airtime_cap=1.5)
    with pytest.raises(ValueError):
        TenancyConfig(airtime_weights={"app": -1.0})
    with pytest.raises(ValueError):
        TenancyConfig(residency_quota_bytes=0)
    cfg = TenancyConfig(airtime_weights={"heavy": 3.0})
    assert cfg.weight_of("heavy") == 3.0
    assert cfg.weight_of("other") == 1.0


def test_tenancy_of_and_attachment():
    assert tenancy_of(None) is None
    env = Environment()
    assert tenancy_of(env) is None
    manager = TenancyManager(env)
    assert tenancy_of(env) is manager and env.tenancy is manager


# ------------------------------------------------------------------ ledger
def test_ledger_counters_gauges_and_peaks():
    env = Environment()
    t = TenancyManager(env)
    t.account_airtime("a", 2.0)
    t.account_airtime("a", 1.0)
    t.account_cpu("a", 0.5)
    t.account_dedup("b", 100.0)
    t.account_eviction("b", 50.0)
    t.account_violations("a", 3)
    t.account_blocked("a")
    t.residency_set("b", 900.0)
    t.residency_set("b", 400.0)
    t.pool_set("a", 2.0)
    assert t.usage("airtime_s", "a") == pytest.approx(3.0)
    assert t.usage("cpu_s", "a") == pytest.approx(0.5)
    assert t.usage("violations", "a") == 3.0
    assert t.usage("blocked_requests", "a") == 1.0
    assert t.usage("resident_bytes", "b") == 400.0
    assert t.peak("resident_bytes", "b") == 900.0  # high-water mark
    assert t.peak("pool_slots", "a") == 2.0
    assert t.usage("airtime_s", "nobody") == 0.0
    # gauges clamp below zero (satellite: no negative residency)
    t.residency_set("b", -5.0)
    assert t.usage("resident_bytes", "b") == 0.0


def test_snapshot_attribution_and_offenders():
    env = Environment()
    t = TenancyManager(env)
    t.account_airtime("hog", 9.0)
    t.account_airtime("victim", 1.0)
    t.residency_set("squat", 800.0)
    t.residency_set("squat", 100.0)
    snap = t.snapshot()
    attr = attribution_from_snapshot(snap)
    assert attr["airtime_s"] == {"hog": 9.0, "victim": 1.0}
    assert attr["resident_bytes"]["squat"] == 800.0  # max, not current
    offenders = top_offenders(snap)
    assert offenders["airtime_s"] == ("hog", 9.0)
    assert offenders["resident_bytes"] == ("squat", 800.0)
    table = render_attribution(snap)
    assert "hog" in table and "airtime_s" in table


def test_ledger_mirrors_into_metrics_registry():
    env = Environment()
    obs = Observability(env, tracing=False, metrics=True)
    t = TenancyManager(env)
    t.account_airtime("hog", 4.0)
    t.residency_set("squat", 700.0)
    t.residency_set("squat", 200.0)
    snap = obs.metrics.snapshot()
    assert snap["counters"]["tenant.airtime_s.hog"] == pytest.approx(4.0)
    offenders = top_offenders(snap)
    assert offenders["airtime_s"][0] == "hog"
    assert offenders["resident_bytes"] == ("squat", 700.0)


# ---------------------------------------------------------- airtime share
def _timed_flows(env, channel, specs):
    """Start (nbytes, tenant) flows at t=0; return name->finish dict."""
    finished = {}
    flows = []
    for label, nbytes, tenant in specs:
        flow = channel.add(nbytes, BPS, tenant=tenant)
        flow.done.add_callback(
            lambda _ev, label=label: finished.setdefault(label, env.now)
        )
        flows.append(flow)
    env.run()
    return finished


def test_per_tenant_fair_share_nullifies_extra_flows():
    env = Environment()
    TenancyManager(env, TenancyConfig())
    channel = FluidChannel(env)
    specs = [("victim", BPS, "v")] + [
        (f"hog-{i}", BPS, "h") for i in range(4)
    ]
    finished = _timed_flows(env, channel, specs)
    # Tenants split airtime 50/50 no matter the flow count: the victim
    # moves 1 MB at BPS/2 (t=2); each hog flow gets BPS/8 until then,
    # BPS/4 after, finishing at t=5.
    assert finished["victim"] == pytest.approx(2.0)
    for i in range(4):
        assert finished[f"hog-{i}"] == pytest.approx(5.0)
    tenancy = env.tenancy
    assert tenancy.usage("airtime_s", "v") == pytest.approx(1.0)
    assert tenancy.usage("airtime_s", "h") == pytest.approx(4.0)


def test_per_flow_share_without_enforcement():
    env = Environment()
    TenancyManager(env, TenancyConfig(enforce=False))
    channel = FluidChannel(env)
    specs = [("victim", BPS, "v")] + [
        (f"hog-{i}", BPS, "h") for i in range(4)
    ]
    finished = _timed_flows(env, channel, specs)
    # Legacy per-flow split: 5 equal flows all finish together at t=5,
    # and the hog's 4 flows bought it 4x the victim's airtime.
    assert finished["victim"] == pytest.approx(5.0)
    assert env.tenancy.usage("airtime_s", "h") == pytest.approx(4.0)
    assert env.tenancy.usage("airtime_s", "v") == pytest.approx(1.0)


def test_airtime_cap_water_filling():
    env = Environment()
    TenancyManager(env, TenancyConfig(airtime_cap=0.25))
    channel = FluidChannel(env)
    specs = [("victim", BPS, "v"), ("hog-0", BPS, "h"), ("hog-1", BPS, "h")]
    finished = _timed_flows(env, channel, specs)
    # Both tenants clamp at 25%; capped airtime stays unused, so the
    # victim needs 4s for 1 MB and each hog flow (12.5% each) drains at
    # 25% tenant share throughout: 1 MB at BPS/8 until t=4 then BPS/8
    # still -> 8s total.
    assert finished["victim"] == pytest.approx(4.0)
    assert finished["hog-0"] == pytest.approx(8.0)
    assert finished["hog-1"] == pytest.approx(8.0)


def test_airtime_weights_favor_designated_tenant():
    env = Environment()
    TenancyManager(env, TenancyConfig(airtime_weights={"v": 3.0}))
    channel = FluidChannel(env)
    finished = _timed_flows(
        env, channel, [("victim", BPS, "v"), ("hog", BPS, "h")]
    )
    # weight 3 vs 1: victim holds 75% airtime and finishes in 4/3 s.
    assert finished["victim"] == pytest.approx(4.0 / 3.0)
    assert finished["hog"] > finished["victim"]
    total = env.tenancy.usage("airtime_s", "v") + env.tenancy.usage(
        "airtime_s", "h"
    )
    assert total == pytest.approx(finished["hog"])  # conservation


def test_untagged_flows_keep_legacy_split():
    env = Environment()
    TenancyManager(env, TenancyConfig())
    channel = FluidChannel(env)
    finished = _timed_flows(
        env, channel, [("a", BPS, ""), ("b", BPS, "")]
    )
    assert finished["a"] == pytest.approx(2.0)
    assert finished["b"] == pytest.approx(2.0)


# ------------------------------------------------------- residency quota
def _io_layer(tmpfs_mb=32.0, config=None):
    env = Environment()
    if config is not None:
        TenancyManager(env, config)
    server = CloudServer(env, spec=ServerSpec(tmpfs_mb=tmpfs_mb))
    return env, OffloadingIOLayer(server.tmpfs, env=env)


def test_residency_quota_burns_oldest_entries():
    env, io = _io_layer(config=TenancyConfig(residency_quota_bytes=1000))
    io.stage("k1", 600, tenant="sq")
    assert io.tenant_resident_bytes("sq") == 600
    io.stage("k2", 600, tenant="sq")  # 1200 > 1000: k1 burns
    assert not io.has_staged("k1") and io.has_staged("k2")
    assert io.tenant_resident_bytes("sq") == 600
    assert io.quota_evictions == 1 and io.quota_evicted_bytes == 600
    assert env.tenancy.usage("evicted_bytes", "sq") == 600.0
    assert env.tenancy.peak("resident_bytes", "sq") == 1200.0


def test_single_over_quota_payload_survives_until_own_burn():
    env, io = _io_layer(config=TenancyConfig(residency_quota_bytes=1000))
    io.stage("big", 1500, tenant="sq")
    assert io.has_staged("big")  # eviction never burns the newest key
    assert io.tenant_resident_bytes("sq") == 1500
    io.burn("big")
    assert io.tenant_resident_bytes("sq") == 0


def test_quota_ignored_without_enforcement():
    env, io = _io_layer(
        config=TenancyConfig(enforce=False, residency_quota_bytes=1000)
    )
    io.stage("k1", 600, tenant="sq")
    io.stage("k2", 600, tenant="sq")
    assert io.has_staged("k1") and io.has_staged("k2")
    assert io.quota_evictions == 0
    # accounting still attributes the squatter
    assert env.tenancy.usage("resident_bytes", "sq") == 1200.0


def test_dedup_credit_attributed_to_tenant():
    env, io = _io_layer(config=TenancyConfig())
    assert io.stage("k1", 500, digest="d", tenant="a")
    assert not io.stage("k2", 500, digest="d", tenant="b")  # dedup hit
    assert env.tenancy.usage("dedup_credit_bytes", "b") == 500.0


def test_staging_exhaustion_is_retryable_under_tenancy():
    env, io = _io_layer(tmpfs_mb=1.0, config=TenancyConfig())
    with pytest.raises(ResourceExhausted):
        io.stage("huge", 2 * MB, tenant="sq")
    # without a tenancy manager the original IOError surfaces
    env2, io2 = _io_layer(tmpfs_mb=1.0)
    with pytest.raises(IOError):
        io2.stage("huge", 2 * MB)


# -------------------------------------------------------- warm-pool floors
def test_pool_floor_reserves_capacity_for_owner():
    env = Environment()
    TenancyManager(env, TenancyConfig())
    platform = RattrapPlatform(env, dispatch_policy="app-affinity")
    platform.enable_predictive(
        PredictiveConfig(pool_capacity=3, pool_floors=(("chess", 2),))
    )
    dispatcher = platform.dispatcher
    # one slot is free for anyone, the remaining two stay reserved
    assert dispatcher.preboot("greedy") is not None
    assert dispatcher.preboot("greedy") is None
    assert dispatcher.preboot_refusals == 1
    # the floor's owner can still claim its reservation
    assert dispatcher.preboot("chess") is not None
    assert dispatcher.preboot("chess") is not None
    env.run()
    # tenancy ledger saw the slots
    assert env.tenancy.peak("pool_slots", "greedy") == 1.0
    assert env.tenancy.peak("pool_slots", "chess") == 2.0


def test_pool_capacity_hard_stop():
    env = Environment()
    platform = RattrapPlatform(env, dispatch_policy="app-affinity")
    platform.enable_predictive(PredictiveConfig(pool_capacity=2))
    dispatcher = platform.dispatcher
    assert dispatcher.preboot("a") is not None
    assert dispatcher.preboot("b") is not None
    assert dispatcher.preboot("c") is None
    env.run()


# ------------------------------------------------------------ adversaries
def test_adversary_validation_and_kinds():
    with pytest.raises(ValueError):
        AirtimeHog("hog", link=None, start_s=-1.0)
    with pytest.raises(ValueError):
        ResidencySquatter("sq", duration_s=0.0)
    assert WarmPoolSquatter("p").kind == "pool-squat"
    assert ResidencySquatter("s").kind == "residency-squat"
    assert AirtimeHog("h", link=None).kind == "airtime-hog"
    with pytest.raises(NotImplementedError):
        Adversary("base").run(None, None)


# ------------------------------------------------------- abuse experiment
def test_abuse_cells_cover_all_scenarios_and_arms():
    cs = abuse.cells(seed=1, smoke=True)
    assert len(cs) == len(abuse.SCENARIOS) * len(abuse.ARMS)
    keys = {c.key for c in cs}
    assert ("pool-squat", "on") in keys and ("airtime-hog", "none") in keys


def test_abuse_smoke_scorecard_contains_all_attacks():
    data = abuse.run(seed=1, jobs=0, smoke=True)
    report = abuse.report(data)
    assert "attack classes contained" in report
    for scenario in abuse.SCENARIOS:
        assert scenario in report
    # every attacked arm identifies its offender from one snapshot
    for scenario in abuse.SCENARIOS:
        off = data[(scenario, "off")]
        resource = abuse.ATTRIBUTED_RESOURCE[scenario]
        assert off["offenders"][resource][0] == abuse.ADVERSARY_APP[scenario]
        assert off["adversary_actions"] > 0
        on = data[(scenario, "on")]
        assert on["availability"] >= 0.99


# ------------------------------------------------- fair-share properties
@st.composite
def _tenant_workloads(draw):
    """Random tenant population: weights, per-tenant flow sizes, cap."""
    n = draw(st.integers(min_value=2, max_value=4))
    weights = [draw(st.floats(min_value=0.5, max_value=4.0)) for _ in range(n)]
    flows = [
        [
            draw(st.floats(min_value=10_000.0, max_value=400_000.0))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        for _ in range(n)
    ]
    cap = draw(
        st.one_of(st.none(), st.floats(min_value=0.25, max_value=1.0))
    )
    return weights, flows, cap


@settings(max_examples=60, deadline=None)
@given(_tenant_workloads())
def test_capped_fair_share_conserves_airtime_and_floors_goodput(workload):
    """The two guarantees the enforcement arm rests on.

    1. Conservation: each tenant's delivered bytes equal ``BPS`` times
       its accounted airtime, and the accounted airtime never exceeds
       the makespan (the medium is never over-allocated).
    2. Weighted-share floor: under water-filling every tenant holds at
       least ``min(cap, w_i / W)`` of the medium while active, so its
       flows drain no later than ``bytes / (BPS * floor_share)`` —
       an honest tenant's goodput never falls below its weighted share
       no matter what the other tenants do.
    """
    weights, flows, cap = workload
    env = Environment()
    TenancyManager(
        env,
        TenancyConfig(
            airtime_cap=cap,
            airtime_weights={f"t{i}": w for i, w in enumerate(weights)},
        ),
    )
    channel = FluidChannel(env)
    done_at = {}
    for i, sizes in enumerate(flows):
        for flow_index, size in enumerate(sizes):
            flow = channel.add(size, BPS, tenant=f"t{i}")
            flow.done.add_callback(
                lambda _ev, i=i: done_at.__setitem__(
                    i, max(done_at.get(i, 0.0), env.now)
                )
            )
    env.run()
    makespan = env.now
    total_weight = sum(weights)
    total_airtime = 0.0
    for i, sizes in enumerate(flows):
        airtime = env.tenancy.usage("airtime_s", f"t{i}")
        total_airtime += airtime
        # conservation: bytes delivered == BPS x accounted airtime
        assert sum(sizes) == pytest.approx(BPS * airtime, rel=1e-6)
        # weighted-share floor on completion time
        floor_share = weights[i] / total_weight
        if cap is not None:
            floor_share = min(cap, floor_share)
        bound = sum(sizes) / (BPS * floor_share)
        assert done_at[i] <= bound * (1 + 1e-6)
    # the medium is never over-allocated
    assert total_airtime <= makespan * (1 + 1e-6)


def test_abuse_cell_deterministic():
    a = abuse._abuse_cell("permission-storm", "on", seed=7, smoke=True)
    b = abuse._abuse_cell("permission-storm", "on", seed=7, smoke=True)
    a.pop("snapshot"), b.pop("snapshot")
    assert a == b
