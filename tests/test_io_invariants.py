"""Invariant tests for the content-addressed OffloadingIOLayer.

Seeded stdlib ``random`` drives arbitrary stage/burn sequences (shared
digests, private payloads, zero-byte params) against a real tmpfs
:class:`~repro.hostos.storage.StorageDevice`, asserting the refcount /
hard-link / capacity invariants after *every* operation:

- every live entry's refcount is >= 1;
- for entries with bytes, the unionfs nlink equals the refcount;
- ``resident_bytes`` equals one copy per distinct digest and matches
  the device's allocation delta exactly;
- at quiescence (everything burned) bytes-freed == bytes-staged and
  the device is back to its baseline.
"""

import random

import pytest

from repro.hostos.storage import StorageDevice
from repro.platform.shared_layer import OffloadingIOLayer
from repro.sim import Environment

DIGEST_POOL = ("virus-db", "ocr-model", "chess-book")
SIZE_POOL = (0, 4_096, 65_536, 1_048_576)


def _make_layer():
    env = Environment()
    device = StorageDevice(env, "tmpfs", 2000.0, 1500.0, 10e-6)
    device.allocate(12_345)  # pre-existing tenant data (the baseline)
    return OffloadingIOLayer(device, env=env), device, 12_345


def _check_invariants(layer, device, baseline):
    expected_resident = 0
    for digest, (refcount, nbytes) in layer._entries.items():
        assert refcount >= 1, f"{digest}: refcount {refcount}"
        expected_resident += nbytes
        if nbytes:
            assert layer.layer.nlink(f"/offload/{digest}") == refcount
    assert layer.resident_bytes == expected_resident
    assert device.bytes_stored == baseline + expected_resident
    # Logical staging is conserved: what is in flight is exactly the
    # difference between everything staged and everything burned.
    in_flight = sum(nbytes for _digest, nbytes in layer._requests.values())
    assert layer.total_staged - layer.total_burned == in_flight


@pytest.mark.parametrize("seed", range(6))
def test_random_stage_burn_sequences(seed):
    rng = random.Random(seed)
    layer, device, baseline = _make_layer()
    staged = []  # request keys currently resident
    next_key = 0

    for _step in range(200):
        if staged and rng.random() < 0.45:
            key = staged.pop(rng.randrange(len(staged)))
            digest, nbytes = layer._requests[key]
            freed = layer.burn(key)
            assert freed == nbytes
        else:
            key = f"req-{next_key}"
            next_key += 1
            nbytes = rng.choice(SIZE_POOL)
            digest = rng.choice(DIGEST_POOL + (None,))
            already_resident = digest is not None and digest in layer._entries
            if already_resident:
                # Shared digests must restage with their original size.
                nbytes = layer._entries[digest][1]
            fresh = layer.stage(key, nbytes, now=0.0, digest=digest)
            assert fresh == (not already_resident)
            staged.append(key)
        _check_invariants(layer, device, baseline)

    # Quiescence: burn everything that is still staged.
    for key in staged:
        layer.burn(key)
    assert layer.total_burned == layer.total_staged
    assert layer.resident_bytes == 0
    assert device.bytes_stored == baseline
    assert not layer._entries and not layer._requests


def test_dedup_shares_one_physical_copy():
    layer, device, baseline = _make_layer()
    assert layer.stage("a", 1000, digest="shared") is True
    assert layer.stage("b", 1000, digest="shared") is False
    assert layer.resident_bytes == 1000
    assert layer.dedup_hits == 1
    assert layer.dedup_bytes_saved == 1000
    assert layer.layer.nlink("/offload/shared") == 2
    assert layer.burn("a") == 1000
    assert layer.resident_bytes == 1000  # b still holds the bytes
    assert layer.burn("b") == 1000
    assert layer.resident_bytes == 0
    assert device.bytes_stored == baseline


def test_stage_errors_leave_state_untouched():
    layer, device, baseline = _make_layer()
    layer.stage("a", 500, digest="d")
    with pytest.raises(ValueError):
        layer.stage("a", 500)  # duplicate request key
    with pytest.raises(ValueError):
        layer.stage("b", 501, digest="d")  # size mismatch for a digest
    with pytest.raises(ValueError):
        layer.stage("c", -1)
    with pytest.raises(KeyError):
        layer.burn("never-staged")
    _check_invariants(layer, device, baseline)
    assert layer.staged_requests() == ["a"]


def test_zero_byte_payloads_are_tracked_but_allocation_free():
    layer, device, baseline = _make_layer()
    assert layer.stage("a", 0) is True
    assert layer.has_staged("a")
    assert layer.resident_bytes == 0
    assert device.bytes_stored == baseline
    assert layer.burn("a") == 0
    assert not layer.has_staged("a")
