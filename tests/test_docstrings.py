"""Documentation gate: every public item carries a docstring.

The repository promises doc comments on every public API element; this
test makes that promise enforceable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.experiments.runner"}  # CLI glue


def _public_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES or "._" in info.name:
            continue
        modules.append(info.name)
    return modules


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        return
    missing = []
    for name in public:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only check items defined here (re-exports are checked at home).
            if getattr(obj, "__module__", module_name) != module_name:
                continue
            if not inspect.getdoc(obj):
                missing.append(name)
            elif inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    if not inspect.getdoc(meth):
                        missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: public items without docstrings: {missing}"
