"""Tests for predictive warm-pool scheduling (scheduler + dispatcher).

Covers the seeded property tests the issue asks for — pool size
bounded by the hysteresis band, no pre-boot when observability is
disabled, EWMA monotone convergence under a constant rate — plus the
dispatcher's FIFO waiter wake-up, preboot ride/claim paths, reaper
protection, and cluster failover behavior.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import make_link
from repro.obs import Observability
from repro.offload import OffloadRequest
from repro.platform import (
    ArrivalRateEWMA,
    ClusterPlatform,
    PredictiveConfig,
    RattrapPlatform,
)
from repro.sim import Environment
from repro.workloads import CHESS_GAME


def _platform(env, metrics=True, config=None):
    if metrics:
        Observability(env, tracing=False, metrics=True)
    plat = RattrapPlatform(env, optimized=True, dispatch_policy="app-affinity")
    plat.enable_predictive(config)
    plat.start_predictor()
    return plat


def _request(i, device="d0", app="chess", at=0.0, seq=0):
    return OffloadRequest(
        request_id=i, device_id=device, app_id=app, profile=CHESS_GAME,
        submitted_at=at, seq_on_device=seq,
    )


# ----------------------------------------------------------------- EWMA
@settings(max_examples=50, deadline=None)
@given(
    alpha=st.floats(min_value=0.01, max_value=1.0),
    rate=st.integers(min_value=1, max_value=20),
    ticks=st.integers(min_value=1, max_value=50),
)
def test_ewma_monotone_under_constant_rate(alpha, rate, ticks):
    """From zero, a constant arrival rate converges monotonically."""
    ewma = ArrivalRateEWMA(alpha=alpha, tick_s=1.0)
    previous = 0.0
    for _ in range(ticks):
        for _ in range(rate):
            ewma.observe("app")
        ewma.tick()
        estimate = ewma.rate("app")
        assert previous <= estimate <= rate + 1e-9
        previous = estimate


def test_ewma_decays_after_demand_stops():
    ewma = ArrivalRateEWMA(alpha=0.5, tick_s=1.0)
    for _ in range(10):
        ewma.observe("app")
        ewma.tick()
    peak = ewma.rate("app")
    for _ in range(10):
        ewma.tick()
    assert ewma.rate("app") < peak * 0.01


def test_ewma_validation():
    with pytest.raises(ValueError):
        ArrivalRateEWMA(alpha=0.0)
    with pytest.raises(ValueError):
        ArrivalRateEWMA(alpha=1.5)
    with pytest.raises(ValueError):
        ArrivalRateEWMA(tick_s=0.0)


# ------------------------------------------------------------ pool bounds
def test_pool_bounded_by_max_pool_under_load():
    """Spares + in-flight pre-boots never exceed the configured cap."""
    env = Environment()
    cfg = PredictiveConfig(max_pool=2, hold_s=1000.0)
    plat = _platform(env, config=cfg)
    link = make_link("lan-wifi")

    procs = [
        plat.submit(_request(i, device=f"d{i}", at=i * 0.05), link)
        for i in range(30)
    ]

    def watch(env):
        for _ in range(200):
            yield env.timeout(0.5)
            assert plat.dispatcher.pool_size("chess") <= cfg.max_pool + 1

    env.process(watch(env))
    for p in procs:
        env.run(until=p)
    assert plat.predictor.ticks > 0


def test_pool_drains_after_demand_fades():
    """Hysteresis: after hold_s with no arrivals, spares are drained."""
    env = Environment()
    cfg = PredictiveConfig(hold_s=20.0, drain_ticks=2)
    plat = _platform(env, config=cfg)
    link = make_link("lan-wifi")
    for i in range(5):
        env.run(until=plat.submit(_request(i, device=f"d{i}", seq=0), link))
    env.run(until=env.now + 300.0)
    assert plat.dispatcher.pool_spares("chess") == 0
    # The rate estimate decayed below the watermark and the hold lapsed.
    assert plat.predictor.target_pool("chess") == 0


def test_no_preboot_without_metrics_registry():
    """The predictor is an observability consumer: obs off, no pre-boot."""
    env = Environment()
    plat = _platform(env, metrics=False)
    link = make_link("lan-wifi")
    for i in range(5):
        env.run(until=plat.submit(_request(i, device=f"d{i}"), link))
    env.run(until=env.now + 60.0)
    assert plat.dispatcher.preboots == 0
    assert plat.dispatcher.pool_spares("chess") == 0
    assert plat.predictor.ticks > 0  # the loop ran, and chose to do nothing


def test_enable_predictive_requires_app_affinity():
    env = Environment()
    plat = RattrapPlatform(env, optimized=True)  # per-device policy
    with pytest.raises(ValueError, match="app-affinity"):
        plat.enable_predictive()


def test_default_platform_pays_zero_predictive_cost():
    """No predictor attached: no pool state, counters stay untouched."""
    env = Environment()
    plat = RattrapPlatform(env, optimized=True)
    link = make_link("lan-wifi")
    env.run(until=plat.submit(_request(0), link))
    d = plat.dispatcher
    assert plat.predictor is None
    assert d._pool_factory is None
    assert (d.preboots, d.preboot_hits, d.pool_drained) == (0, 0, 0)
    assert not plat.scheduler.tail_ranking


# ----------------------------------------------------------- warm dispatch
def test_requests_land_on_prebooted_spare():
    """After the pool warms, a later wave dispatches without a stall."""
    env = Environment()
    cfg = PredictiveConfig(hold_s=1000.0)
    plat = _platform(env, config=cfg)
    plat.start_idle_reaper(idle_timeout_s=120.0)
    link = make_link("lan-wifi")
    for i in range(5):
        env.run(until=plat.submit(_request(i, device=f"d{i}", at=env.now), link))
    stalls_before = plat.dispatcher.boot_stalls
    env.run(until=env.now + 300.0)  # reaper would kill an unprotected runtime
    r = env.run(until=plat.submit(_request(99, device="d99", at=env.now, seq=1), link))
    assert not r.blocked
    assert plat.dispatcher.boot_stalls == stalls_before
    assert plat.dispatcher.warmable_stalls == 0


def test_reaper_protection_keeps_target_pool_warm():
    env = Environment()
    cfg = PredictiveConfig(hold_s=1000.0)
    plat = _platform(env, config=cfg)
    link = make_link("lan-wifi")
    r = env.run(until=plat.submit(_request(0), link))
    env.run(until=env.now + 200.0)
    protected = plat.predictor.protected_cids()
    assert r.executed_on in protected
    assert plat.reap_idle_runtimes(idle_timeout_s=120.0) == []


def test_preboot_riders_share_one_boot():
    """Same-app arrivals during a pre-boot ride it instead of cold-booting."""
    env = Environment()
    plat = _platform(env, config=PredictiveConfig())
    link = make_link("lan-wifi")
    assert plat.dispatcher.preboot("chess") is not None
    p1 = plat.submit(_request(0, device="d0"), link)
    p2 = plat.submit(_request(1, device="d1"), link)
    r1 = env.run(until=p1)
    r2 = env.run(until=p2)
    assert plat.dispatcher.cold_boots == 0
    assert r1.executed_on == r2.executed_on
    assert plat.dispatcher.preboot_hits >= 1


# ----------------------------------------------------------- FIFO waiters
def test_boot_waiters_wake_fifo_by_request_id():
    """Same-boot waiters acquire in request-id order, not set order."""
    env = Environment()
    plat = RattrapPlatform(env, optimized=True, dispatch_policy="app-affinity")
    link = make_link("lan-wifi")
    order = []

    def client(env, rid):
        record = yield from plat.dispatcher.acquire(_request(rid, device=f"d{rid}"))
        order.append(rid)
        return record

    procs = [env.process(client(env, rid)) for rid in (3, 1, 4, 2, 0)]
    for p in procs:
        env.run(until=p)
    # The initiator (first submitter, rid 3) resumes first; the joiners
    # wake strictly by request id.
    assert order[0] == 3
    assert order[1:] == [0, 1, 2, 4]


# ------------------------------------------------------------ tail-aware
def test_tail_ranking_avoids_drifting_runtime():
    env = Environment()
    Observability(env, tracing=False, metrics=True)
    plat = RattrapPlatform(env, optimized=True, dispatch_policy="app-affinity")
    plat.enable_predictive()
    sched = plat.scheduler
    assert sched.tail_ranking
    from repro.obs import metrics_of

    metrics = metrics_of(env)
    for _ in range(20):
        sched.note_response("cac-slow", 9.0, metrics)
        sched.note_response("cac-fast", 0.5, metrics)
    assert sched.tail_p95("cac-slow") > sched.tail_p95("cac-fast") > 0.0
    # note_response with no registry is a no-op (pure-load fallback).
    sched.note_response("cac-none", 1.0, None)
    assert sched.tail_p95("cac-none") == 0.0


# --------------------------------------------------------------- cluster
def test_cluster_failover_grows_surviving_pools():
    env = Environment()
    Observability(env, tracing=False, metrics=True)
    cluster = ClusterPlatform(
        env,
        servers=2,
        policy="device-sticky",
        platform_factory=lambda e: RattrapPlatform(
            e, optimized=True, dispatch_policy="app-affinity"
        ),
    )
    cluster.enable_predictive(PredictiveConfig(hold_s=1000.0))
    cluster.start_predictors()
    link = make_link("lan-wifi")
    procs = [
        cluster.submit(_request(i, device=f"dev-{i}", at=i * 0.2), link)
        for i in range(8)
    ]
    for p in procs:
        env.run(until=p)
    assert all(node.predictor is not None for node in cluster.nodes)

    # Take one node dark: its predictor skips ticks (no boom, no boots),
    # and rehashed traffic keeps flowing through the survivor.
    cluster.nodes[0].fail_node("maintenance")
    dark_preboots = cluster.nodes[0].dispatcher.preboots
    more = [
        cluster.submit(_request(100 + i, device=f"dev-{i}", at=env.now, seq=1), link)
        for i in range(8)
    ]
    done = 0
    for p in more:
        try:
            env.run(until=p)
            done += 1
        except Exception:
            pass
    assert done == 8  # sticky devices failed over to the live node
    assert cluster.nodes[0].dispatcher.preboots == dark_preboots
    env.run(until=env.now + 30.0)
    assert cluster.nodes[0].dispatcher.preboots == dark_preboots
