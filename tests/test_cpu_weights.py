"""Tests for weighted (GPS) processor sharing and scheduler priorities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostos import MultiCoreCPU
from repro.sim import Environment


def test_weight_validation():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    with pytest.raises(ValueError):
        cpu.execute(1.0, weight=0.0)
    with pytest.raises(ValueError):
        cpu.execute(1.0, weight=-1.0)


def test_weights_split_contended_core_proportionally():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    # weight 3 job gets 3/4 of the core, weight 1 gets 1/4.
    heavy = cpu.execute(3.0, weight=3.0)
    light = cpu.execute(1.0, weight=1.0)
    env.run(until=env.any_of([heavy, light]))
    # Both progress at their share: heavy needs 3/(3/4)=4 s, light 1/(1/4)=4 s.
    assert env.now == pytest.approx(4.0)
    env.run()
    assert cpu.completed_jobs == 2


def test_weights_irrelevant_when_uncontended():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=4)
    slow = cpu.execute(2.0, weight=0.1)
    fast = cpu.execute(2.0, weight=10.0)
    env.run(until=env.all_of([slow, fast]))
    assert env.now == pytest.approx(2.0)  # both had a full core


def test_water_filling_caps_at_one_core():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=2)
    # Weight-100 job can still only use one core; the two light jobs
    # share the other (0.5 each), not starve.
    vip = cpu.execute(1.0, weight=100.0)
    a = cpu.execute(1.0, weight=1.0)
    b = cpu.execute(1.0, weight=1.0)
    env.run(until=vip)
    assert env.now == pytest.approx(1.0)
    env.run(until=env.all_of([a, b]))
    # Light jobs: 0.5 rate for 1 s, then a full core each: 1+0.5 = 1.5 s.
    assert env.now == pytest.approx(1.5)


def test_priority_restores_interactive_latency_under_saturation():
    """The Monitor & Scheduler story: a saturated server, one
    interactive job.  Weighting it 8x cuts its completion time."""

    def run(weight):
        env = Environment()
        cpu = MultiCoreCPU(env, cores=2)
        for _ in range(8):  # batch background load
            cpu.execute(4.0)
        done = cpu.execute(0.5, weight=weight, tag="interactive")
        env.run(until=done)
        return env.now

    unweighted = run(1.0)
    weighted = run(8.0)
    assert weighted < unweighted / 2
    # Equal weights: 9 jobs on 2 cores -> rate 2/9 -> 0.5 s needs 2.25 s.
    assert unweighted == pytest.approx(0.5 * 9 / 2)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=5.0),  # work
            st.floats(min_value=0.1, max_value=8.0),  # weight
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(1, 4),
)
def test_weighted_ps_work_conservation(jobs, cores):
    env = Environment()
    cpu = MultiCoreCPU(env, cores=cores)
    events = [cpu.execute(w, weight=wt) for w, wt in jobs]
    env.run(until=env.all_of(events))
    horizon = env.now
    total_work = sum(w for w, _ in jobs)
    busy_integral = cpu.utilization.series.time_average(0.0, horizon) * horizon
    assert busy_integral == pytest.approx(total_work, rel=1e-6, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.2, max_value=5.0))
def test_heavier_weight_never_finishes_later(weight_boost):
    """Raising one job's weight can only help it (all else equal)."""

    def run(w):
        env = Environment()
        cpu = MultiCoreCPU(env, cores=1)
        target = cpu.execute(1.0, weight=w)
        for _ in range(3):
            cpu.execute(2.0)
        env.run(until=target)
        return env.now

    base = run(1.0)
    boosted = run(1.0 + weight_boost)
    assert boosted <= base + 1e-9


def test_platform_priority_weights_speed_up_app():
    """End-to-end: Monitor & Scheduler priorities shorten execution of
    the prioritized app on a saturated platform."""
    from repro.network import make_link
    from repro.offload import OffloadRequest, Phase
    from repro.platform import RattrapPlatform
    from repro.sim import Environment as Env
    from repro.workloads import CHESS_GAME, LINPACK

    def run(weights):
        env = Env()
        plat = RattrapPlatform(env)
        plat.priority_weights = weights
        # Saturate the 12-core server with batch linpack requests.
        plat.server.cpu.cores = 2  # shrink to force contention
        plat.server.cpu.utilization.capacity = 2
        link = make_link("lan-wifi")
        procs = []
        for i in range(6):
            procs.append(plat.submit(
                OffloadRequest(i, f"batch-{i}", "linpack", LINPACK), link))
        chess_proc = plat.submit(
            OffloadRequest(99, "gamer", "chess", CHESS_GAME), link)
        result = env.run(until=chess_proc)
        return result.phase(Phase.EXECUTION)

    fair = run({})
    prioritized = run({"chess": 8.0})
    assert prioritized < fair


def test_zero_work_with_weight_completes():
    env = Environment()
    cpu = MultiCoreCPU(env, cores=1)
    assert cpu.execute(0.0, weight=5.0).triggered
