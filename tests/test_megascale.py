"""Tests for the megascale experiment (experiments/megascale.py).

The full 1M-device run goes via ``make megascale``; here the anchor
exactness, shard-count identity, and a small mega configuration check
the wiring — mesoscale conserved totals match the discrete model
exactly, shard packing and job count are routing detail, and kernel
events stay decoupled from the device count.
"""

from repro.experiments.megascale import (
    SMOKE_DEVICES_PER_ZONE,
    SMOKE_ZONES,
    _anchor_cell,
    _calibrate,
    _identity_cell,
    _mega_cell,
    _mega_zone_specs,
    _run_packing,
    report,
    run,
)


def test_anchor_conserved_totals_exact():
    # The mesoscale aggregate must conserve the discrete model's
    # totals exactly — requests, bytes, and energy, not approximately.
    a = _anchor_cell()
    assert a["exact"] == {
        "completed": True,
        "bytes_up": True,
        "bytes_down": True,
        "energy_j": True,
    }
    assert a["exact_all"]
    assert a["mean_response_delta_s"] < 1e-9
    # ...while doing strictly less kernel work than the discrete arm.
    assert a["meso"]["events"] < a["discrete"]["events"]


def test_anchor_warm_requests_uniform():
    # The anchor regime is uncontended, so every discrete warm request
    # is physically identical (response/energy spreads are ulp noise).
    a = _anchor_cell()
    assert a["discrete"]["uniform"]
    assert a["discrete"]["response_spread_s"] < 1e-9
    assert a["meso"]["base_response_s"] == a["meso"]["base_response_s"]


def test_identity_byte_identical_across_shard_counts():
    i = _identity_cell()
    assert i["identical"]
    assert i["cross_messages"] > 0  # roamers actually crossed shards
    assert all(z["visitors_served"] > 0 for z in i["zones"])


def test_mega_cell_small_config():
    m = _mega_cell(zones=2, devices_per_zone=5000)
    assert m["devices"] == 10000
    assert m["completed"] == m["devices"]  # nobody dropped
    # Mesoscale decouples events from devices: far fewer events than
    # requests is the whole point of the aggregate population.
    assert m["events"] < m["devices"]
    assert m["cross_messages"] > 0
    assert m["roamers"] > 0
    assert m["preboots"] > 0  # predictor fed from aggregate arrivals
    assert m["metrics"]["counters"]["population.completed"] > 0


def test_mega_serial_vs_worker_pool_identical():
    cal = _calibrate(1)
    specs, horizon = _mega_zone_specs(2, 5000, 1, cal["base_response_s"])
    packing = [[0], [1]]
    serial = _run_packing(specs, packing, horizon, jobs=0, metrics=True)
    pooled = _run_packing(specs, packing, horizon, jobs=2, metrics=True)
    assert serial == pooled  # summaries AND metrics snapshots


def test_megascale_smoke_report_renders():
    text = report(run(smoke=True))
    assert "EXACT" in text
    assert "byte-identical" in text
    assert "req/s" in text
    assert f"{SMOKE_ZONES * SMOKE_DEVICES_PER_ZONE} devices" in text
