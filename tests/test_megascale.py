"""Tests for the megascale experiment (experiments/megascale.py).

The full 1M-device run goes via ``make megascale``; here the anchor
exactness, shard-count identity, and a small mega configuration check
the wiring — mesoscale conserved totals match the discrete model
exactly, shard packing and job count are routing detail, and kernel
events stay decoupled from the device count.
"""

from repro.experiments.megascale import (
    SMOKE_DEVICES_PER_ZONE,
    SMOKE_ZONES,
    _anchor_cell,
    _calibrate,
    _identity_cell,
    _mega_cell,
    _mega_zone_specs,
    _run_packing,
    report,
    run,
)
from repro.platform.population import PopulationSource
from repro.sim import Environment
from repro.sim.shard import EpochStats
from repro.workloads import VIRUS_SCAN


def test_anchor_conserved_totals_exact():
    # The mesoscale aggregate must conserve the discrete model's
    # totals exactly — requests, bytes, and energy, not approximately.
    a = _anchor_cell()
    assert a["exact"] == {
        "completed": True,
        "bytes_up": True,
        "bytes_down": True,
        "energy_j": True,
    }
    assert a["exact_all"]
    assert a["mean_response_delta_s"] < 1e-9
    # ...while doing strictly less kernel work than the discrete arm.
    assert a["meso"]["events"] < a["discrete"]["events"]


def test_anchor_warm_requests_uniform():
    # The anchor regime is uncontended, so every discrete warm request
    # is physically identical (response/energy spreads are ulp noise).
    a = _anchor_cell()
    assert a["discrete"]["uniform"]
    assert a["discrete"]["response_spread_s"] < 1e-9
    assert a["meso"]["base_response_s"] == a["meso"]["base_response_s"]


def test_identity_byte_identical_across_shard_counts():
    i = _identity_cell()
    assert i["identical"]
    assert i["cross_messages"] > 0  # roamers actually crossed shards
    assert all(z["visitors_served"] > 0 for z in i["zones"])


def test_mega_cell_small_config():
    m = _mega_cell(zones=2, devices_per_zone=5000)
    assert m["devices"] == 10000
    assert m["completed"] == m["devices"]  # nobody dropped
    # Mesoscale decouples events from devices: far fewer events than
    # requests is the whole point of the aggregate population.
    assert m["events"] < m["devices"]
    assert m["cross_messages"] > 0
    assert m["roamers"] > 0
    assert m["preboots"] > 0  # predictor fed from aggregate arrivals
    assert m["metrics"]["counters"]["population.completed"] > 0
    # Idle-epoch skipping measurably engages on the mega cell (the
    # populations and predictors tick at 1 Hz, the sync window is
    # 0.25 s, so ~3 of every 4 barriers are provably empty)...
    assert m["epochs_skipped"] > 0
    assert m["epochs_run"] > 0
    # ...and the counters are mirrored into the merged metrics plane.
    assert m["metrics"]["counters"]["shard.epochs_skipped"] > 0


def test_mega_serial_vs_worker_pool_epoch_stats_identical():
    cal = _calibrate(1)
    specs, horizon = _mega_zone_specs(2, 5000, 1, cal["base_response_s"])
    packing = [[0], [1]]
    s_serial, s_pooled = EpochStats(), EpochStats()
    _run_packing(specs, packing, horizon, jobs=0, metrics=True, stats=s_serial)
    _run_packing(specs, packing, horizon, jobs=2, metrics=True, stats=s_pooled)
    assert (s_serial.epochs_run, s_serial.epochs_skipped) == (
        s_pooled.epochs_run,
        s_pooled.epochs_skipped,
    )
    assert s_serial.epochs_skipped > 0


def test_population_coalesces_ticks_without_consumers():
    # With no predictor and no metrics registry the tick train carries
    # no information; the population must settle in O(1) events so it
    # cannot defeat the sharded kernel's idle-epoch skipping.
    def run_pop(env):
        pop = PopulationSource(
            env, VIRUS_SCAN, n=500, rate_req_s=50.0, start_s=2.0,
            base_response_s=1.5, capacity_req_s=60.0,
        )
        pop.start()
        env.run(until=pop.end_time_s + 1.0)
        return pop

    quiet_env = Environment()
    pop = run_pop(quiet_env)
    assert pop.completed == pop.n  # exact totals, settled once
    assert quiet_env.event_count < 10

    # ...while a metrics-bearing run still ticks at the 1 Hz cadence.
    from repro.obs import Observability

    obs_env = Environment()
    Observability(obs_env, tracing=False, metrics=True)
    pop = run_pop(obs_env)
    assert pop.completed == pop.n
    assert obs_env.event_count > 10


def test_mega_serial_vs_worker_pool_identical():
    cal = _calibrate(1)
    specs, horizon = _mega_zone_specs(2, 5000, 1, cal["base_response_s"])
    packing = [[0], [1]]
    serial = _run_packing(specs, packing, horizon, jobs=0, metrics=True)
    pooled = _run_packing(specs, packing, horizon, jobs=2, metrics=True)
    assert serial == pooled  # summaries AND metrics snapshots


def test_megascale_smoke_report_renders():
    text = report(run(smoke=True))
    assert "EXACT" in text
    assert "byte-identical" in text
    assert "req/s" in text
    assert f"{SMOKE_ZONES * SMOKE_DEVICES_PER_ZONE} devices" in text
