"""Property-based invariants of the platform request lifecycle.

These hold for any seed and any workload: the bookkeeping the whole
evaluation rests on must be internally consistent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import make_link
from repro.offload import Phase, run_inflow_experiment
from repro.platform import RattrapPlatform, VMCloudPlatform
from repro.sim import Environment
from repro.workloads import ALL_WORKLOADS, generate_inflow

KB = 1024


def _run(platform_name, profile, seed, devices=2, per_device=3):
    env = Environment()
    platform = (
        VMCloudPlatform(env) if platform_name == "vm" else RattrapPlatform(env)
    )
    plans = generate_inflow(profile, devices=devices, requests_per_device=per_device,
                            seed=seed)
    results = run_inflow_experiment(env, platform, plans, make_link("lan-wifi"))
    return platform, results


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(ALL_WORKLOADS), st.integers(0, 50),
       st.sampled_from(["vm", "rattrap"]))
def test_response_equals_phase_sum(profile, seed, platform_name):
    _, results = _run(platform_name, profile, seed)
    for r in results:
        assert r.response_time == pytest.approx(r.timeline.total, rel=1e-9)
        for phase in Phase:
            assert r.phase(phase) >= 0.0


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(ALL_WORKLOADS), st.integers(0, 50))
def test_table2_identity_for_any_seed(profile, seed):
    """Rattrap upload == VM upload - (devices-1) x code size, always."""
    devices, per_device = 3, 4
    _, vm_results = _run("vm", profile, seed, devices, per_device)
    _, rt_results = _run("rattrap", profile, seed, devices, per_device)
    vm_up = sum(r.bytes_up for r in vm_results)
    rt_up = sum(r.bytes_up for r in rt_results)
    code = int(profile.code_size_kb * KB)
    assert vm_up - rt_up == (devices - 1) * code


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(ALL_WORKLOADS), st.integers(0, 50))
def test_scheduler_and_resources_settle(profile, seed):
    platform, results = _run("rattrap", profile, seed)
    assert platform.scheduler.active_requests == 0
    assert all(rec.active_requests == 0 for rec in platform.db.all_records())
    # Burn-after-reading leaves the in-memory layer empty.
    assert platform.shared_layer.offload_io.resident_bytes == 0
    # Every served request has a CID that exists in the DB.
    for r in results:
        assert platform.db.exists(r.executed_on)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 50))
def test_same_seed_same_results(seed):
    """Full determinism: identical seeds give identical timings."""
    from repro.workloads import CHESS_GAME

    _, a = _run("rattrap", CHESS_GAME, seed)
    _, b = _run("rattrap", CHESS_GAME, seed)
    assert [(r.started_at, r.finished_at, r.bytes_up) for r in a] == [
        (r.started_at, r.finished_at, r.bytes_up) for r in b
    ]
