"""Tests for messages, request timelines, power model, device, decisions."""

import pytest

from repro.network import make_link
from repro.offload import (
    KB,
    DecisionEngine,
    MobileDevice,
    Message,
    MessageKind,
    OffloadRequest,
    Phase,
    PhaseTimeline,
    PowerModel,
    RequestResult,
    result_message,
    upload_messages,
)
from repro.sim import Environment
from repro.workloads import CHESS_GAME, LINPACK, OCR, VIRUS_SCAN


# ---------------------------------------------------------------- messages
def test_message_validation():
    with pytest.raises(ValueError):
        Message(kind="control", size_bytes=-1)


def test_upload_messages_with_code():
    msgs = upload_messages(OCR, include_code=True)
    kinds = [m.kind for m in msgs]
    assert kinds == ["mobile_code", "file_param", "control"]
    total_kb = sum(m.size_bytes for m in msgs) / KB
    assert total_kb == pytest.approx(1400 + 280 + 2, abs=0.01)


def test_upload_messages_cached_code():
    msgs = upload_messages(OCR, include_code=False)
    assert [m.kind for m in msgs] == ["file_param", "control"]


def test_upload_messages_no_files_for_pure_compute():
    # Linpack/Chess transfer no files: file_param carries params only.
    msgs = upload_messages(LINPACK, include_code=False)
    fp = next(m for m in msgs if m.kind == "file_param")
    assert fp.size_bytes == int(0.25 * KB)


def test_result_message_kind_and_size():
    msg = result_message(VIRUS_SCAN)
    assert msg.kind == MessageKind.RESULT.value
    assert msg.size_bytes == int(17.4 * KB)


# --------------------------------------------------------------- timelines
def test_phase_timeline_accumulates():
    tl = PhaseTimeline()
    tl.add(Phase.CONNECTION, 0.1)
    tl.add(Phase.TRANSFER, 0.5)
    tl.add(Phase.TRANSFER, 0.25)
    assert tl.get(Phase.TRANSFER) == pytest.approx(0.75)
    assert tl.total == pytest.approx(0.85)
    assert set(tl.as_dict()) == {p.value for p in Phase}


def test_phase_timeline_rejects_negative():
    with pytest.raises(ValueError):
        PhaseTimeline().add(Phase.EXECUTION, -0.1)


def test_request_validation():
    with pytest.raises(ValueError):
        OffloadRequest(request_id=-1, device_id="d", app_id="a", profile=OCR)


def _result(profile, response_s, bytes_up=1000, bytes_down=100, phases=None):
    tl = PhaseTimeline()
    for phase, dur in (phases or {(Phase.EXECUTION): response_s}).items():
        tl.add(phase, dur)
    req = OffloadRequest(request_id=0, device_id="d0", app_id=profile.name, profile=profile)
    return RequestResult(
        request=req,
        timeline=tl,
        started_at=0.0,
        finished_at=response_s,
        bytes_up=bytes_up,
        bytes_down=bytes_down,
    )


def test_speedup_and_failure_semantics():
    fast = _result(CHESS_GAME, response_s=1.0)  # local 4.0 -> speedup 4
    assert fast.speedup == pytest.approx(4.0)
    assert not fast.offloading_failure
    slow = _result(CHESS_GAME, response_s=8.0)
    assert slow.speedup == pytest.approx(0.5)
    assert slow.offloading_failure


# ------------------------------------------------------------------- power
def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(cpu_active_watts=0)
    with pytest.raises(KeyError):
        PowerModel().radio("5g")


def test_local_energy_is_cpu_time_times_power():
    pm = PowerModel(cpu_active_watts=0.9)
    assert pm.local_energy(LINPACK).total_j == pytest.approx(12.0 * 0.9)


def test_offload_energy_components():
    pm = PowerModel(idle_watts=0.25)
    phases = {
        Phase.CONNECTION: 0.1,
        Phase.PREPARATION: 1.0,
        Phase.TRANSFER: 2.0,
        Phase.EXECUTION: 3.0,
    }
    res = _result(OCR, response_s=6.1, bytes_up=3000, bytes_down=1000, phases=phases)
    e = pm.offload_energy(res, "lan-wifi")
    radio = pm.radio("lan-wifi")
    # Upload gets 3/4 of transfer time, download 1/4.
    assert e.tx_j == pytest.approx(1.5 * radio.tx_watts)
    assert e.rx_j == pytest.approx(0.5 * radio.rx_watts)
    assert e.idle_j == pytest.approx(4.1 * 0.25)
    assert e.tail_j == pytest.approx(radio.tail_seconds * radio.tail_watts)
    assert e.total_j == pytest.approx(e.tx_j + e.rx_j + e.idle_j + e.tail_j)


def test_offload_energy_zero_bytes_no_radio_activity():
    pm = PowerModel()
    res = _result(LINPACK, response_s=1.0, bytes_up=0, bytes_down=0,
                  phases={Phase.TRANSFER: 0.5, Phase.EXECUTION: 0.5})
    e = pm.offload_energy(res, "4g")
    assert e.tx_j == 0.0 and e.rx_j == 0.0


def test_3g_tail_energy_dominates_wifi():
    pm = PowerModel()
    res = _result(CHESS_GAME, response_s=1.0)
    assert (
        pm.offload_energy(res, "3g").tail_j
        > pm.offload_energy(res, "lan-wifi").tail_j * 3
    )


def test_normalized_energy_below_one_for_good_offload():
    pm = PowerModel()
    phases = {Phase.EXECUTION: 0.9, Phase.TRANSFER: 0.05}
    res = _result(LINPACK, response_s=1.0, phases=phases)
    assert pm.normalized_offload_energy(res, "lan-wifi") < 1.0


# ------------------------------------------------------------------ device
def test_device_battery_accounting():
    env = Environment()
    dev = MobileDevice("d0", make_link("lan-wifi"), battery_joules=100.0)
    energy = env.run(until=env.process(dev.execute_locally(env, CHESS_GAME)))
    assert env.now == pytest.approx(4.0)
    assert dev.energy_used_j == pytest.approx(energy.total_j)
    assert dev.local_executions == 1
    assert 0 < dev.battery_remaining_fraction < 1


def test_device_offload_accounting():
    dev = MobileDevice("d0", make_link("3g"))
    res = _result(CHESS_GAME, response_s=1.0)
    e = dev.account_offload(res)
    assert dev.offloaded_requests == 1
    assert dev.energy_used_j == pytest.approx(e.total_j)


def test_device_validation():
    with pytest.raises(ValueError):
        MobileDevice("d", make_link("lan-wifi"), battery_joules=0)


# --------------------------------------------------------------- decisions
def test_decision_engine_estimate_components():
    eng = DecisionEngine()
    link = make_link("lan-wifi")
    est = eng.estimate(LINPACK, link, expected_preparation_s=0.0, code_cached=True)
    assert est.execution_s == pytest.approx(LINPACK.cloud_cpu_s)
    assert est.predicted_speedup > 1.0
    assert est.response_s == pytest.approx(
        est.connection_s + est.preparation_s + est.transfer_s + est.execution_s
    )


def test_decision_cold_start_can_flip_decision():
    eng = DecisionEngine()
    link = make_link("lan-wifi")
    # Chess local = 4 s; a 28.72 s VM boot makes offloading a loser.
    assert eng.should_offload(CHESS_GAME, link, expected_preparation_s=0.0)
    assert not eng.should_offload(CHESS_GAME, link, expected_preparation_s=28.72)
    # Rattrap's 1.75 s boot keeps it profitable.
    assert eng.should_offload(CHESS_GAME, link, expected_preparation_s=1.75,
                              code_cached=False)


def test_decision_3g_discourages_file_heavy_offload():
    eng = DecisionEngine()
    # VirusScan ships ~900 KB per request; on 3G's 0.38 Mbps uplink the
    # transfer alone exceeds the 13.2 s local time.
    assert not eng.should_offload(VIRUS_SCAN, make_link("3g"))
    assert eng.should_offload(VIRUS_SCAN, make_link("lan-wifi"))


def test_decision_validation():
    with pytest.raises(ValueError):
        DecisionEngine(speedup_threshold=0)
    with pytest.raises(ValueError):
        DecisionEngine().estimate(OCR, make_link("4g"), -1.0, True)
