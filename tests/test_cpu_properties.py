"""Property-based tests of the processor-sharing CPU model.

These pin the fluid-model invariants the platform timings rest on:
work conservation, fairness, and monotonicity under load.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostos import MultiCoreCPU
from repro.offload import OffloadRequest
from repro.network import make_link
from repro.platform import RattrapPlatform
from repro.sim import Environment
from repro.workloads import CHESS_GAME


jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0),  # arrival
        st.floats(min_value=0.01, max_value=10.0),  # work
    ),
    min_size=1,
    max_size=12,
)


def _run_jobs(cores, jobs):
    env = Environment()
    cpu = MultiCoreCPU(env, cores=cores)
    finish = {}

    def submit(env, i, arrival, work):
        yield env.timeout(arrival)
        yield cpu.execute(work)
        finish[i] = env.now

    for i, (arrival, work) in enumerate(jobs):
        env.process(submit(env, i, arrival, work))
    env.run()
    return env, cpu, finish


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8), jobs_strategy)
def test_ps_completion_never_before_work_done(cores, jobs):
    env, cpu, finish = _run_jobs(cores, jobs)
    for i, (arrival, work) in enumerate(jobs):
        assert finish[i] >= arrival + work - 1e-6, (i, jobs)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 8), jobs_strategy)
def test_ps_work_conservation(cores, jobs):
    """The integral of busy capacity equals the total work served."""
    env, cpu, finish = _run_jobs(cores, jobs)
    total_work = sum(w for _, w in jobs)
    horizon = max(finish.values()) + 1e-9
    busy_integral = cpu.utilization.series.time_average(0.0, horizon) * horizon
    assert busy_integral == pytest.approx(total_work, rel=1e-6, abs=1e-6)
    assert cpu.completed_jobs == len(jobs)
    assert cpu.active_jobs == 0


@settings(max_examples=30, deadline=None)
@given(jobs_strategy)
def test_ps_more_cores_never_slower(jobs):
    _, _, finish_small = _run_jobs(2, jobs)
    _, _, finish_big = _run_jobs(8, jobs)
    for i in finish_small:
        assert finish_big[i] <= finish_small[i] + 1e-6


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), jobs_strategy)
def test_ps_extra_load_never_faster(cores, jobs):
    _, _, base = _run_jobs(cores, jobs)
    loaded = jobs + [(0.0, 5.0)]
    _, _, with_extra = _run_jobs(cores, loaded)
    for i in base:
        assert with_extra[i] >= base[i] - 1e-6


def test_ps_equal_jobs_finish_together():
    env, cpu, finish = _run_jobs(1, [(0.0, 2.0)] * 5)
    times = set(round(t, 9) for t in finish.values())
    assert len(times) == 1
    assert times.pop() == pytest.approx(10.0)


def test_binder_traffic_counts_per_container():
    """End-to-end: each Rattrap request produces namespaced Binder ioctls."""
    env = Environment()
    platform = RattrapPlatform(env)
    link = make_link("lan-wifi")
    for i, device in enumerate(("d0", "d0", "d1")):
        env.run(until=platform.submit(
            OffloadRequest(i, device, "chess", CHESS_GAME, seq_on_device=i), link))
    records = {r.owner_device: r for r in platform.db.all_records()}
    c0 = records["d0"].runtime
    c1 = records["d1"].runtime
    assert c0.device_namespace.state_of("/dev/binder").ioctl_count == 4  # 2 reqs
    assert c1.device_namespace.state_of("/dev/binder").ioctl_count == 2
    # The shared /dev/binder node aggregates both namespaces' handles.
    assert platform.server.kernel.devices.get("/dev/binder").open_count == 2
