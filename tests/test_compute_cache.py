"""Tests for the content-addressed compute-result cache.

Covers the node tier (LRU + byte budget, cost-aware admission), the
cluster tier (rendezvous ownership, cross-node hits, bounded mirror),
the serve-path integration (hit skips execute, spans still tile,
affinity survives hit-only sessions), tenancy quotas and the
hypothesis property that a hit never changes the observable result.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CacheSquatter
from repro.network import make_link
from repro.obs import Observability
from repro.offload import Phase
from repro.offload.request import OffloadRequest
from repro.platform import RattrapPlatform, TenancyManager
from repro.platform.compute_cache import (
    ClusterCacheDirectory,
    ComputeCacheConfig,
    ComputeResultCache,
    rendezvous_owner,
)
from repro.platform.tenancy import TenancyConfig
from repro.sim import Environment
from repro.workloads import CHESS_GAME, OCR, VIRUS_SCAN

KB = 1024


def _req(i, digest, app="scan", device=None, profile=OCR, version="v1"):
    return OffloadRequest(
        request_id=i,
        device_id=device or f"d{i}",
        app_id=app,
        profile=profile,
        payload_digest=digest,
        code_version=version,
    )


def _greedy():
    """Admit-everything config for tests that target LRU mechanics."""
    return ComputeCacheConfig(capacity_bytes=100 * KB, adaptive=False)


# ------------------------------------------------------------------ keys
def test_key_covers_app_version_and_digest():
    a = ComputeResultCache.key_for(_req(0, "x"))
    b = ComputeResultCache.key_for(_req(1, "x", version="v2"))
    c = ComputeResultCache.key_for(_req(2, "y"))
    d = ComputeResultCache.key_for(_req(3, "x", app="ocr"))
    assert len({a, b, c, d}) == 4  # any component change is a new key


def test_payload_digest_auto_computed_from_profile_identity():
    # A profile naming its payload (the shared virus database) gives
    # every request content identity without opt-in at call sites...
    scan = OffloadRequest(0, "d0", "scan", VIRUS_SCAN)
    assert scan.payload_digest == VIRUS_SCAN.payload_key == "virus-db-v1"
    # ...while payload-unique profiles stay uncacheable by default.
    ocr = OffloadRequest(1, "d1", "ocr", OCR)
    assert ocr.payload_digest is None
    assert ComputeResultCache.key_for(ocr) is None
    # An explicit digest always wins over the profile identity.
    explicit = OffloadRequest(2, "d2", "scan", VIRUS_SCAN, payload_digest="mine")
    assert explicit.payload_digest == "mine"


# ------------------------------------------------------- node tier: LRU
def test_lru_eviction_respects_byte_budget_and_recency():
    cache = ComputeResultCache(_greedy())
    for i, digest in enumerate(("a", "b", "c")):
        assert cache.offer(_req(i, digest), execute_s=1.0, nbytes=30 * KB)
    assert cache.total_bytes == 90 * KB and len(cache) == 3
    # Touch "a" so "b" becomes the least recently used...
    assert cache.lookup(_req(10, "a")) is not None
    # ...then a fourth entry must evict exactly "b" to fit the budget.
    assert cache.offer(_req(11, "d"), execute_s=1.0, nbytes=30 * KB)
    assert ("scan", "v1", "b") not in cache
    for digest in ("a", "c", "d"):
        assert ("scan", "v1", digest) in cache
    assert cache.total_bytes == 90 * KB
    assert cache.evictions == 1 and cache.evicted_bytes == 30 * KB


def test_oversized_and_duplicate_offers_rejected():
    cache = ComputeResultCache(_greedy())
    assert not cache.offer(_req(0, "big"), execute_s=1.0, nbytes=101 * KB)
    assert cache.rejected == 1 and len(cache) == 0
    assert cache.offer(_req(1, "x"), execute_s=1.0, nbytes=KB)
    assert not cache.offer(_req(2, "x"), execute_s=1.0, nbytes=KB)
    assert cache.stores == 1


# ------------------------------------------------- cost-aware admission
def test_adaptive_admission_self_primes_via_ghost_list():
    cache = ComputeResultCache(ComputeCacheConfig(repeat_alpha=0.3))
    request = _req(0, "x")
    # Never-seen app: repeat probability 0, expected saving 0 — reject.
    assert not cache.offer(request, execute_s=5.0, nbytes=1 * KB)
    assert cache.rejected == 1
    # First lookup ghosts the key (still a miss, p stays 0)...
    assert cache.lookup(request) is None
    assert cache.repeat_probability("scan") == 0.0
    # ...the second sighting raises the EWMA, and the offer now clears
    # the residency bar (5 s x 0.3 >> 0.05 s/MB x 1 KB).
    assert cache.lookup(request) is None
    assert cache.repeat_probability("scan") == pytest.approx(0.3)
    assert cache.offer(request, execute_s=5.0, nbytes=1 * KB)
    assert cache.lookup(request) is not None


def test_adaptive_admission_rejects_cheap_bulky_results():
    cache = ComputeResultCache(ComputeCacheConfig(repeat_alpha=1.0))
    request = _req(0, "x")
    cache.lookup(request)
    cache.lookup(request)  # repeat probability now 1.0
    # 1 ms of compute saved does not pay for 50 MB of residency.
    assert not cache.offer(request, execute_s=0.001, nbytes=50 * 1024 * KB)
    assert cache.offer(request, execute_s=10.0, nbytes=50 * KB)


def test_ghost_list_is_bounded():
    cache = ComputeResultCache(
        ComputeCacheConfig(ghost_entries=4, adaptive=True)
    )
    for i in range(20):
        cache.lookup(_req(i, f"unique-{i}"))
    assert len(cache._ghosts) == 4


# ------------------------------------------------- cluster tier: routing
def test_rendezvous_owner_stable_under_membership_change():
    keys = [("app", "v1", f"digest-{i}") for i in range(200)]
    three = {k: rendezvous_owner(range(3), k) for k in keys}
    # Growing the fleet only remaps keys the new node now wins...
    four = {k: rendezvous_owner(range(4), k) for k in keys}
    moved = [k for k in keys if four[k] != three[k]]
    assert all(four[k] == 3 for k in moved)
    assert 0 < len(moved) < len(keys) // 2  # ~1/4 expected, never a reshuffle
    # ...and shrinking only remaps the keys the lost node owned.
    two = {k: rendezvous_owner(range(2), k) for k in keys}
    for k in keys:
        if three[k] != 2:
            assert two[k] == three[k]
    with pytest.raises(ValueError):
        rendezvous_owner([], keys[0])


def test_cluster_directory_cross_node_hit_and_bounded_mirror():
    cfg = ComputeCacheConfig(adaptive=False, mirror_entries=2)
    caches = [ComputeResultCache(cfg) for _ in range(3)]
    directory = ClusterCacheDirectory(caches)
    request = _req(0, "shared")
    key = ComputeResultCache.key_for(request)
    owner = directory.owner_index(key)
    # An offer from any node lands on the digest's owning node.
    asker = (owner + 1) % 3
    assert caches[asker].offer(request, execute_s=1.0, nbytes=KB)
    assert key in caches[owner]
    # A lookup from a third node resolves through the directory...
    other = (owner + 2) % 3
    assert caches[other].lookup(_req(1, "shared")) is not None
    assert caches[other].cluster_hits == 1
    assert directory.remote_lookups >= 1
    # ...and repeats are served from the local mirror, not the wire.
    assert caches[other].lookup(_req(2, "shared")) is not None
    assert caches[other].mirror_hits == 1
    # The mirror is bounded: hot remote entries rotate through it.
    for i, digest in enumerate(("m1", "m2", "m3", "m4")):
        r = _req(10 + i, digest)
        k = ComputeResultCache.key_for(r)
        target = directory.owner_index(k)
        caches[target]._store(k, "scan", KB, 1.0, 0.0)
        if target != other:
            caches[other].lookup(r)
    assert len(caches[other]._mirror) <= 2
    assert directory.stats()["hits"] == sum(c.hits for c in caches)


# -------------------------------------------------- serve-path semantics
def _serve(platform, request):
    return platform.env.run(until=platform.submit(request, make_link("lan-wifi")))


def test_serve_path_hit_skips_execute_and_spans_still_tile():
    env = Environment()
    obs = Observability(env)
    plat = RattrapPlatform(env, optimized=True)
    plat.enable_compute_cache(ComputeCacheConfig(adaptive=False))
    r1 = _serve(plat, OffloadRequest(0, "d0", "scan", VIRUS_SCAN))
    r2 = _serve(plat, OffloadRequest(1, "d1", "scan", VIRUS_SCAN))
    assert not r1.result_cache_hit and r2.result_cache_hit
    # The hit's whole execution phase is the constant cache-serve cost.
    assert r2.phase(Phase.EXECUTION) == pytest.approx(
        plat.compute_cache.cfg.hit_s
    )
    assert r2.response_time < r1.response_time
    # Phase spans — with "cache_hit" standing in for "execute" — still
    # tile the two responses exactly.
    assert obs.tracer.phase_total_s() == pytest.approx(
        r1.response_time + r2.response_time, rel=1e-9
    )
    assert sum(1 for s in obs.tracer.spans if s.kind == "cache_hit") == 1
    # Identical observable result: the device downloads the same bytes.
    # (bytes_up legitimately differs — r1 carried the app code.)
    assert r2.bytes_down == r1.bytes_down


def test_hit_still_binds_app_affinity():
    # Regression: a hit skips _execute, but must still register the
    # runtime as the app's affinity target — otherwise every hit-only
    # session cold-boots a fresh container.
    env = Environment()
    plat = RattrapPlatform(env, optimized=True, dispatch_policy="app-affinity")
    plat.enable_compute_cache(ComputeCacheConfig(adaptive=False))
    for i in range(4):
        _serve(plat, OffloadRequest(i, f"d{i}", "scan", VIRUS_SCAN))
    assert plat.runtime_count() == 1
    assert plat.compute_cache.hits == 3


def test_requests_with_operations_always_execute():
    # Declared workflow operations must pass the access filter, so the
    # serve path never shortcuts them through the cache.
    env = Environment()
    plat = RattrapPlatform(env, optimized=True)
    plat.enable_compute_cache(ComputeCacheConfig(adaptive=False))
    for i in range(2):
        result = _serve(
            plat,
            OffloadRequest(
                i, f"d{i}", "scan", VIRUS_SCAN, operations=("net.outbound",)
            ),
        )
        assert not result.result_cache_hit
    assert plat.compute_cache.lookups == 0


# ------------------------------------------------------------- tenancy
def test_tenant_quota_burns_own_oldest_never_a_neighbour():
    env = Environment()
    tenancy = TenancyManager(env, TenancyConfig(cache_quota_bytes=60 * KB))
    cache = ComputeResultCache(_greedy()).bind_env(env)
    assert cache.offer(_req(0, "v", app="victim"), execute_s=1.0, nbytes=20 * KB)
    for i, digest in enumerate(("a1", "a2", "a3")):
        assert cache.offer(
            _req(1 + i, digest, app="hog"), execute_s=1.0, nbytes=30 * KB
        )
    # The hog's third store burned its own oldest entry ("a1"); the
    # victim's entry survived even though it is the global LRU.
    assert ("hog", "v1", "a1") not in cache
    assert ("victim", "v1", "v") in cache
    assert cache.tenant_bytes("hog") == 60 * KB
    # Ledger rolls: gauge tracks residency, counter the burned bytes.
    assert tenancy.usage("cache_bytes", "hog") == 60 * KB
    assert tenancy.usage("cache_evicted_bytes", "hog") == 30 * KB
    assert tenancy.usage("cache_bytes", "victim") == 20 * KB
    # A single result larger than the quota is rejected outright.
    assert not cache.offer(_req(9, "huge", app="hog"), execute_s=1.0, nbytes=61 * KB)


def test_cache_hits_roll_into_tenant_ledger():
    env = Environment()
    tenancy = TenancyManager(env)
    cache = ComputeResultCache(_greedy()).bind_env(env)
    cache.offer(_req(0, "x"), execute_s=1.0, nbytes=KB)
    cache.lookup(_req(1, "x"))
    cache.lookup(_req(2, "x"))
    assert tenancy.usage("cache_hits", "scan") == 2.0


def test_cache_squatter_contained_by_quota():
    env = Environment()
    TenancyManager(env, TenancyConfig(cache_quota_bytes=64 * KB))
    cache = ComputeResultCache(
        ComputeCacheConfig(capacity_bytes=128 * KB, adaptive=False)
    ).bind_env(env)
    victim = _req(0, "db", app="victim")
    assert cache.offer(victim, execute_s=2.0, nbytes=30 * KB)
    attacker = CacheSquatter("spam", OCR.derive("spam", cloud_cpu_s=1.0))
    # Forge the squatter's loop by hand: unique digests, inflated cost.
    for i in range(20):
        forged = _req(100 + i, f"squat-{i}", app="spam")
        cache.lookup(forged)
        cache.lookup(forged)
        cache.offer(forged, execute_s=attacker.execute_s, nbytes=32 * KB)
    # The squatter holds at most its quota and the victim entry stays.
    assert cache.tenant_bytes("spam") <= 64 * KB
    assert cache.lookup(_req(999, "db", app="victim")) is not None


# ------------------------------------------------------- reproducibility
def test_cachebench_cells_identical_serial_and_parallel():
    from repro.experiments import cachebench

    def strip_wall(data):
        # wall_s is host wall-clock — everything else must be identical
        return {
            key: {f: v for f, v in cell.items() if f != "wall_s"}
            for key, cell in data.items()
        }

    assert strip_wall(cachebench.run(seed=1, jobs=2, smoke=True)) == strip_wall(
        cachebench.run(seed=1, jobs=0, smoke=True)
    )


@settings(max_examples=12, deadline=None)
@given(
    digests=st.lists(
        st.sampled_from(["a", "b", "c", None]), min_size=1, max_size=6
    )
)
def test_hit_never_changes_observable_result(digests):
    # Property: for any request sequence, serving with the cache
    # changes *when* results arrive, never *what* arrives — and the
    # conserved totals (requests served, bytes moved) are identical.
    def run(with_cache):
        env = Environment()
        plat = RattrapPlatform(env, optimized=True)
        if with_cache:
            plat.enable_compute_cache(ComputeCacheConfig(adaptive=False))
        out = []
        for i, digest in enumerate(digests):
            out.append(
                _serve(
                    plat,
                    OffloadRequest(
                        i, f"d{i}", "chess", CHESS_GAME, payload_digest=digest
                    ),
                )
            )
        return out

    cached, plain = run(True), run(False)
    assert len(cached) == len(plain)
    for c, p in zip(cached, plain):
        assert (c.bytes_up, c.bytes_down, c.blocked) == (
            p.bytes_up,
            p.bytes_down,
            p.blocked,
        )
        assert c.response_time <= p.response_time + 1e-9
    assert sum(c.bytes_down for c in cached) == sum(p.bytes_down for p in plain)
