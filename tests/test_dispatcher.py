"""Tests for dispatcher allocation policies and idle reclamation."""

import pytest

from repro.network import make_link
from repro.offload import OffloadRequest, run_inflow_experiment
from repro.platform import RattrapPlatform
from repro.platform.dispatcher import Dispatcher
from repro.runtime.base import RuntimeState
from repro.sim import Environment
from repro.workloads import CHESS_GAME, generate_inflow


def test_dispatcher_validation():
    env = Environment()
    plat = RattrapPlatform(env)
    with pytest.raises(ValueError):
        Dispatcher(env, plat.db, plat.scheduler, plat.make_runtime, policy="random")
    with pytest.raises(ValueError):
        Dispatcher(env, plat.db, plat.scheduler, plat.make_runtime,
                   warm_dispatch_s=-1)


def test_per_device_policy_one_runtime_per_device():
    env = Environment()
    plat = RattrapPlatform(env, dispatch_policy="per-device")
    plans = generate_inflow(CHESS_GAME, devices=4, requests_per_device=3, seed=0)
    run_inflow_experiment(env, plat, plans, make_link("lan-wifi"))
    assert plat.dispatcher.cold_boots == 4
    assert len(plat.db) == 4
    owners = {r.owner_device for r in plat.db.all_records()}
    assert owners == {f"device-{i}" for i in range(4)}


def test_app_affinity_policy_consolidates():
    env = Environment()
    plat = RattrapPlatform(env, dispatch_policy="app-affinity")
    plans = generate_inflow(CHESS_GAME, devices=4, requests_per_device=3, seed=0)
    results = run_inflow_experiment(env, plat, plans, make_link("lan-wifi"))
    assert len(results) == 12
    # One app -> at most a couple of containers for every device; the
    # remaining requests are warm dispatches or boot-waiters.
    assert plat.dispatcher.cold_boots <= 2
    assert plat.dispatcher.warm_dispatches >= 8
    assert len(plat.db) <= 2


def test_app_affinity_waiters_share_cold_boot():
    # Two devices arrive while the single app container is still booting:
    # both requests resolve against the same boot.
    env = Environment()
    plat = RattrapPlatform(env, dispatch_policy="app-affinity")
    link = make_link("lan-wifi")
    p1 = plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link)
    p2 = plat.submit(OffloadRequest(1, "d1", "chess", CHESS_GAME), link)
    r1 = env.run(until=p1)
    r2 = env.run(until=p2)
    assert r1.executed_on == r2.executed_on
    assert plat.dispatcher.cold_boots == 1


def test_idle_reaper_stops_and_recreates_runtimes():
    env = Environment()
    plat = RattrapPlatform(env)
    link = make_link("lan-wifi")
    r1 = env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    first_cid = r1.executed_on
    # Idle long past the timeout, reap manually.
    env.run(until=env.now + 300.0)
    reaped = plat.reap_idle_runtimes(idle_timeout_s=120.0)
    assert reaped == [first_cid]
    assert plat.db.get(first_cid).runtime.state is RuntimeState.STOPPED
    # The next request triggers a fresh cold boot.
    r2 = env.run(until=plat.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link))
    assert r2.executed_on != first_cid
    assert plat.dispatcher.cold_boots == 2


def test_idle_reaper_spares_recently_used_and_busy():
    env = Environment()
    plat = RattrapPlatform(env)
    link = make_link("lan-wifi")
    env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    # Used moments ago: not reaped.
    assert plat.reap_idle_runtimes(idle_timeout_s=120.0) == []
    with pytest.raises(ValueError):
        plat.reap_idle_runtimes(idle_timeout_s=0)


def test_start_idle_reaper_background_process():
    env = Environment()
    plat = RattrapPlatform(env)
    link = make_link("lan-wifi")
    plat.start_idle_reaper(idle_timeout_s=60.0, check_interval_s=5.0)
    r1 = env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    env.run(until=env.now + 120.0)
    assert plat.db.get(r1.executed_on).runtime.state is RuntimeState.STOPPED
    with pytest.raises(ValueError):
        plat.start_idle_reaper(check_interval_s=0)


def test_reaper_releases_server_memory():
    env = Environment()
    plat = RattrapPlatform(env)
    link = make_link("lan-wifi")
    env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    reserved_before = plat.server.memory.reserved_mb
    env.run(until=env.now + 200.0)
    plat.reap_idle_runtimes(idle_timeout_s=100.0)
    assert plat.server.memory.reserved_mb < reserved_before
