"""Tests for device-namespace isolation and multiplexing."""

import pytest

from repro.hostos import (
    DeviceError,
    DeviceNamespaceManager,
    DeviceRegistry,
)


@pytest.fixture
def registry():
    reg = DeviceRegistry()
    reg.create("/dev/binder", provider="binder_linux", namespaced=True)
    reg.create("/dev/alarm", provider="android_alarm", namespaced=True)
    reg.create("/dev/ashmem", provider="ashmem_linux", namespaced=False)
    return reg


@pytest.fixture
def manager(registry):
    return DeviceNamespaceManager(registry)


def test_namespaced_open_gets_private_state(manager):
    ns1, ns2 = manager.create(), manager.create()
    s1 = ns1.open("/dev/binder")
    s2 = ns2.open("/dev/binder")
    assert s1 is not s2
    assert s1.namespace_id != s2.namespace_id


def test_namespaced_state_isolated_between_containers(manager):
    ns1, ns2 = manager.create(), manager.create()
    s1 = ns1.open("/dev/binder")
    ns2.open("/dev/binder")
    s1.ioctl()
    s1.ioctl()
    assert s1.ioctl_count == 2
    assert ns2.state_of("/dev/binder").ioctl_count == 0


def test_namespaced_private_data_isolated(manager):
    ns1, ns2 = manager.create(), manager.create()
    s1 = ns1.open("/dev/binder")
    s2 = ns2.open("/dev/binder")
    s1.data["service_registry"] = ["activity"]
    assert "service_registry" not in s2.data


def test_global_device_is_shared(manager):
    ns1, ns2 = manager.create(), manager.create()
    d1 = ns1.open("/dev/ashmem")
    d2 = ns2.open("/dev/ashmem")
    assert d1 is d2
    assert d1.open_count == 2


def test_shared_node_tracks_aggregate_handles(manager, registry):
    ns1, ns2 = manager.create(), manager.create()
    ns1.open("/dev/binder")
    ns2.open("/dev/binder")
    assert registry.get("/dev/binder").open_count == 2
    ns1.close("/dev/binder")
    assert registry.get("/dev/binder").open_count == 1


def test_reopen_same_namespace_reuses_state(manager):
    ns = manager.create()
    s1 = ns.open("/dev/binder")
    s2 = ns.open("/dev/binder")
    assert s1 is s2
    assert s1.open_count == 2


def test_close_never_opened_rejected(manager):
    ns = manager.create()
    with pytest.raises(DeviceError):
        ns.close("/dev/binder")


def test_teardown_releases_all_handles(manager, registry):
    ns = manager.create()
    ns.open("/dev/binder")
    ns.open("/dev/binder")
    ns.open("/dev/alarm")
    ns.teardown()
    assert registry.get("/dev/binder").open_count == 0
    assert registry.get("/dev/alarm").open_count == 0
    assert not ns.active
    assert len(manager) == 0


def test_torn_down_namespace_rejects_operations(manager):
    ns = manager.create()
    ns.teardown()
    with pytest.raises(DeviceError):
        ns.open("/dev/binder")


def test_teardown_allows_module_unload(manager, registry):
    # Once every namespace is gone, the device provider can be removed —
    # mirroring Rattrap unloading idle Android drivers.
    ns = manager.create()
    ns.open("/dev/binder")
    with pytest.raises(DeviceError):
        registry.remove_provider("binder_linux")
    ns.teardown()
    assert registry.remove_provider("binder_linux") == 1


def test_open_paths_reports_live_handles(manager):
    ns = manager.create()
    ns.open("/dev/binder")
    ns.open("/dev/alarm")
    ns.close("/dev/alarm")
    assert ns.open_paths() == ["/dev/binder"]


def test_namespace_ids_unique(manager):
    ids = {manager.create().ns_id for _ in range(10)}
    assert len(ids) == 10


def test_active_namespaces_listing(manager):
    ns1 = manager.create()
    ns2 = manager.create()
    assert manager.active_namespaces() == [ns1.ns_id, ns2.ns_id]
    ns1.teardown()
    assert manager.active_namespaces() == [ns2.ns_id]
