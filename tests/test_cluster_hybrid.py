"""Tests for the multi-server cluster and the hybrid (decision-driven)
client extensions."""

import pytest

from repro.network import make_link
from repro.offload import (
    DecisionEngine,
    MobileDevice,
    run_inflow_experiment,
)
from repro.offload.client import replay_hybrid
from repro.platform import ClusterPlatform, RattrapPlatform, VMCloudPlatform
from repro.sim import Environment
from repro.workloads import CHESS_GAME, LINPACK, VIRUS_SCAN, generate_inflow


# ------------------------------------------------------------------ cluster
def test_cluster_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ClusterPlatform(env, servers=0)
    with pytest.raises(ValueError):
        ClusterPlatform(env, servers=2, policy="chaos")


def test_cluster_sticky_routing_is_stable():
    env = Environment()
    cluster = ClusterPlatform(env, servers=3, policy="device-sticky")
    plans = generate_inflow(LINPACK, devices=6, requests_per_device=4, seed=2)
    results = run_inflow_experiment(env, cluster, plans, make_link("lan-wifi"))
    assert len(results) == 24
    # Every device's requests land on one node.
    per_device = {}
    for r in results:
        per_device.setdefault(r.request.device_id, set()).add(r.executed_on)
    assert all(len(cids) == 1 for cids in per_device.values())
    # More than one node got traffic.
    assert sum(1 for n in cluster.node_loads() if n > 0) >= 2


def test_cluster_least_loaded_spreads():
    env = Environment()
    cluster = ClusterPlatform(env, servers=3, policy="least-loaded")
    plans = generate_inflow(LINPACK, devices=6, requests_per_device=4, seed=2)
    results = run_inflow_experiment(env, cluster, plans, make_link("lan-wifi"))
    assert len(results) == 24
    loads = cluster.node_loads()
    assert all(load > 0 for load in loads)


def test_cluster_memory_and_runtime_totals():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    plans = generate_inflow(LINPACK, devices=4, requests_per_device=2, seed=0)
    run_inflow_experiment(env, cluster, plans, make_link("lan-wifi"))
    assert cluster.runtime_count() == 4
    assert cluster.total_memory_mb() == 4 * 96.0


def test_cluster_custom_factory_vm_nodes():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2, platform_factory=VMCloudPlatform)
    plans = generate_inflow(LINPACK, devices=2, requests_per_device=1, seed=0)
    results = run_inflow_experiment(env, cluster, plans, make_link("lan-wifi"))
    assert len(results) == 2
    assert cluster.total_memory_mb() == 2 * 512.0


def test_cluster_idle_reaper_runs_on_all_nodes():
    env = Environment()
    cluster = ClusterPlatform(env, servers=2)
    procs = cluster.start_idle_reaper(idle_timeout_s=50.0, check_interval_s=10.0)
    assert len(procs) == 2


# ------------------------------------------------------------------- hybrid
def _hybrid(profile, scenario, platform_name="rattrap", devices_n=3, per_device=4):
    env = Environment()
    platform = (
        RattrapPlatform(env) if platform_name == "rattrap" else VMCloudPlatform(env)
    )
    plans = generate_inflow(profile, devices=devices_n,
                            requests_per_device=per_device, seed=3)
    devices = {
        f"device-{i}": MobileDevice(f"device-{i}", make_link(scenario))
        for i in range(devices_n)
    }
    engine = DecisionEngine()
    proc = env.process(replay_hybrid(env, platform, plans, devices, engine))
    results = env.run(until=proc)
    return platform, devices, results


def test_hybrid_offloads_when_profitable():
    platform, devices, results = _hybrid(LINPACK, "lan-wifi")
    assert all(not r.executed_locally for r in results)
    assert all(d.offloaded_requests > 0 for d in devices.values())


def test_hybrid_runs_locally_on_bad_network():
    # VirusScan on 3G: ~900 KB per request over 0.38 Mbps never pays.
    platform, devices, results = _hybrid(VIRUS_SCAN, "3g")
    assert all(r.executed_locally for r in results)
    assert len(platform.results) == 0  # nothing reached the cloud
    assert all(d.local_executions > 0 for d in devices.values())
    # Local runs are not offloading failures by definition.
    assert all(not r.offloading_failure for r in results)


def test_hybrid_avoids_vm_cold_start_failures():
    # ChessGame vs a cold VM cloud: the engine predicts the 28.72 s boot
    # kills the first request, so it keeps early requests local; once no
    # cold start looms it still refuses (cold forever, VM never boots).
    platform, devices, results = _hybrid(CHESS_GAME, "lan-wifi", platform_name="vm")
    assert results[0].executed_locally
    assert sum(r.offloading_failure for r in results) == 0


def test_hybrid_missing_device_rejected():
    env = Environment()
    platform = RattrapPlatform(env)
    plans = generate_inflow(LINPACK, devices=2, requests_per_device=1, seed=0)
    with pytest.raises(ValueError, match="no device"):
        env.run(until=env.process(
            replay_hybrid(env, platform, plans, {}, DecisionEngine())))


def test_platform_estimates_cold_then_warm():
    env = Environment()
    platform = RattrapPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    request = plans[0].request
    cold = platform.expected_preparation_s(request)
    assert cold == pytest.approx(1.75, abs=0.01)
    assert not platform.code_cached(request)
    env.run(until=platform.submit(request, make_link("lan-wifi")))
    warm = platform.expected_preparation_s(request)
    assert warm < 0.01
    assert platform.code_cached(request)


def test_vm_platform_estimates():
    env = Environment()
    platform = VMCloudPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    request = plans[0].request
    assert platform.expected_preparation_s(request) == pytest.approx(28.72, abs=0.01)
    assert not platform.code_cached(request)


# ------------------------------------------------------------------ deadline
def test_deadline_aborts_vm_cold_start():
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = VMCloudPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=3, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    proc = env.process(replay_with_deadline(env, platform, plans, devices, 5.0))
    results = env.run(until=proc)
    # The first request hits the 28.72 s boot and is aborted at 5 s.
    assert results[0].deadline_aborted
    assert results[0].executed_locally
    # The VM keeps booting in the background, so later requests land warm
    # (chess response ~1.5 s < 5 s deadline).
    assert not results[-1].deadline_aborted
    # Bounded worst case: aborted response = deadline + local time.
    assert results[0].response_time == pytest.approx(5.0 + CHESS_GAME.local_time_s,
                                                     rel=0.01)


def test_deadline_not_triggered_on_fast_platform():
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = RattrapPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=2, requests_per_device=2, seed=0)
    devices = {
        f"device-{i}": MobileDevice(f"device-{i}", make_link("lan-wifi"))
        for i in range(2)
    }
    proc = env.process(replay_with_deadline(env, platform, plans, devices, 10.0))
    results = env.run(until=proc)
    assert not any(r.deadline_aborted for r in results)
    assert platform.scheduler.active_requests == 0


def test_deadline_validation():
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = RattrapPlatform(env)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    with pytest.raises(ValueError):
        env.run(until=env.process(
            replay_with_deadline(env, platform, plans, {}, 5.0)))
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    with pytest.raises(ValueError):
        env.run(until=env.process(
            replay_with_deadline(env, platform, plans, devices, 0.0)))


class _PacedPlatform:
    """Stub platform serving every request in exactly ``service_s``
    simulated seconds, split into two hops so the completion event is
    scheduled *after* the client's deadline timer — the adversarial
    ordering for the deadline/completion same-tick race."""

    def __init__(self, env, service_s, split_s=1.0):
        self.env = env
        self.service_s = service_s
        self.split_s = split_s

    def submit(self, request, link):
        """Return the serving process (same contract as CloudPlatform)."""
        from repro.offload.request import PhaseTimeline, RequestResult

        def serve(env):
            started = env.now
            yield env.timeout(self.split_s)
            yield env.timeout(self.service_s - self.split_s)
            return RequestResult(
                request=request,
                timeline=PhaseTimeline(),
                started_at=started,
                finished_at=env.now,
                executed_on="stub-0",
            )

        return self.env.process(serve(self.env))


def test_deadline_same_tick_completion_is_kept():
    # The response lands in the exact tick the deadline fires, with the
    # expiry timer processing first: the condition wakes on the expiry,
    # but the completed response must not be thrown away.
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = _PacedPlatform(env, service_s=5.0)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=1, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    proc = env.process(replay_with_deadline(env, platform, plans, devices, 5.0))
    [result] = env.run(until=proc)
    assert not result.deadline_aborted
    assert not result.executed_locally
    assert result.executed_on == "stub-0"
    assert result.finished_at == pytest.approx(5.0)
    assert devices["device-0"].offloaded_requests == 1


def test_deadline_abort_reports_honest_start_time():
    # Aborted requests must carry started_at = submission time, so the
    # deadline + local-execution penalty shows up in response_time.
    from repro.offload.client import replay_with_deadline

    env = Environment()
    platform = _PacedPlatform(env, service_s=50.0)
    plans = generate_inflow(CHESS_GAME, devices=1, requests_per_device=2,
                            think_time_s=2.0, seed=0)
    devices = {"device-0": MobileDevice("device-0", make_link("lan-wifi"))}
    proc = env.process(replay_with_deadline(env, platform, plans, devices, 5.0))
    results = env.run(until=proc)
    assert all(r.deadline_aborted and r.executed_locally for r in results)
    for r in results:
        assert r.response_time == pytest.approx(5.0 + CHESS_GAME.local_time_s)
    # The second request was submitted one think-gap after the first
    # finished — its honest start time is that submission instant.
    first, second = results
    assert first.started_at == pytest.approx(plans[0].gap_s)
    assert second.started_at == pytest.approx(
        first.finished_at + plans[1].gap_s
    )
