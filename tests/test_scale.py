"""Smoke tests for the opt-in scale experiment (experiments/scale.py).

The full 1k-10k ramp runs via ``make scale``; here a miniature ramp
step checks the wiring — every device served, content-addressed dedup
engaged, metrics populated — without the CI cost of the real thing.
"""

from repro.experiments.scale import SERVERS, _scale_cell, cells, merge, report


def test_scale_cell_serves_every_device():
    m = _scale_cell(devices=50)
    assert m["completed"] == 50
    assert m["sim_s"] > 0
    assert m["events"] > 0
    assert m["mean_response_s"] > 0
    assert m["max_active_flows"] >= 1
    assert m["peak_rss_mb"] > 0


def test_scale_cell_dedups_shared_payload():
    # Every device ships the same signature DB: per node the first
    # staging materializes, every later one is a content-addressed hit.
    m = _scale_cell(devices=50)
    assert m["dedup_hits"] == 50 - SERVERS
    assert m["dedup_saved_bytes"] > 0
    assert m["staged_bytes"] > m["dedup_saved_bytes"]


def test_scale_cell_deterministic():
    a = _scale_cell(devices=30)
    b = _scale_cell(devices=30)
    # Wall clock and RSS vary run to run; the simulation itself must not.
    for key in ("completed", "sim_s", "events", "mean_response_s",
                "max_active_flows", "runtimes", "dedup_hits",
                "dedup_saved_bytes", "staged_bytes"):
        assert a[key] == b[key], key


def test_scale_report_renders_ramp_and_headline():
    cs = cells()
    data = merge(cs[:1], [_scale_cell(devices=50)])
    text = report(data)
    assert "req/s" in text
    assert "dedup" in text
    assert "sustained" in text
