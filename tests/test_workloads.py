"""Tests for workload profiles and request-stream generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import (
    ALL_WORKLOADS,
    CHESS_GAME,
    LINPACK,
    OCR,
    VIRUS_SCAN,
    WorkloadProfile,
    generate_inflow,
    get_profile,
    poisson_inflow,
)


def test_four_paper_workloads_exist():
    assert [w.name for w in ALL_WORKLOADS] == ["ocr", "chess", "virusscan", "linpack"]
    assert {w.category for w in ALL_WORKLOADS} == {
        "image-tool",
        "game",
        "anti-virus",
        "math",
    }


def test_get_profile_lookup():
    assert get_profile("ocr") is OCR
    with pytest.raises(KeyError):
        get_profile("minecraft")


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(name="", category="x")
    with pytest.raises(ValueError):
        WorkloadProfile(name="x", category="x", code_size_kb=-1)
    with pytest.raises(ValueError):
        WorkloadProfile(name="x", category="x", exec_io_ops=-1)


def test_table2_calibration_vm_and_rattrap_uploads():
    """Per-request payloads reproduce Table II totals (5 devices x 20 reqs)."""
    expectations = {
        # (VM upload, Rattrap upload, download) in KB from Table II
        "ocr": (35047, 29440, 152),
        "chess": (13301, 4788, 34),
        "virusscan": (98895, 91973, 1738),
        "linpack": (705, 169, 11),
    }
    for profile in ALL_WORKLOADS:
        vm_up = 5 * profile.code_size_kb + 100 * profile.per_request_upload_kb
        rt_up = profile.code_size_kb + 100 * profile.per_request_upload_kb
        down = 100 * profile.result_size_kb
        exp_vm, exp_rt, exp_down = expectations[profile.name]
        assert vm_up == pytest.approx(exp_vm, rel=0.01), profile.name
        assert rt_up == pytest.approx(exp_rt, rel=0.01), profile.name
        assert down == pytest.approx(exp_down, rel=0.15), profile.name


def test_code_dominates_for_pure_compute_workloads():
    # Fig. 3: mobile code > 50 % of per-VM migrated data for Chess/Linpack.
    for profile in (CHESS_GAME, LINPACK):
        per_vm = profile.code_size_kb + 20 * profile.per_request_upload_kb
        assert profile.code_size_kb / per_vm > 0.5, profile.name
    for profile in (OCR, VIRUS_SCAN):
        per_vm = profile.code_size_kb + 20 * profile.per_request_upload_kb
        assert profile.code_size_kb / per_vm < 0.5, profile.name


def test_virusscan_most_io_intensive():
    assert VIRUS_SCAN.exec_io_ops == max(w.exec_io_ops for w in ALL_WORKLOADS)


def test_transfers_files_flags():
    assert OCR.transfers_files and VIRUS_SCAN.transfers_files
    assert not CHESS_GAME.transfers_files and not LINPACK.transfers_files


def test_local_beats_cloud_cpu():
    # Handsets are slower than Xeon cores: local time > cloud CPU time.
    for w in ALL_WORKLOADS:
        assert w.local_time_s > w.cloud_cpu_s * 3


# ---------------------------------------------------------------- inflow
def test_generate_inflow_shape():
    plans = generate_inflow(OCR, devices=5, requests_per_device=20, seed=7)
    assert len(plans) == 100
    assert len({p.request.request_id for p in plans}) == 100
    devices = {p.device_id for p in plans}
    assert devices == {f"device-{i}" for i in range(5)}


def test_generate_inflow_deterministic_per_seed():
    a = generate_inflow(OCR, seed=3)
    b = generate_inflow(OCR, seed=3)
    c = generate_inflow(OCR, seed=4)
    assert [p.time_s for p in a] == [p.time_s for p in b]
    assert [p.time_s for p in a] != [p.time_s for p in c]


def test_generate_inflow_think_gaps_bounded():
    plans = generate_inflow(OCR, think_time_s=6.0, think_jitter=0.25, seed=0)
    gaps = [p.gap_s for p in plans if p.request.seq_on_device > 0]
    assert all(4.5 <= g <= 7.5 for g in gaps)


def test_generate_inflow_device_stagger():
    plans = generate_inflow(OCR, devices=3, requests_per_device=1,
                            start_offset_s=0.5, seed=0)
    firsts = sorted(p.time_s for p in plans)
    assert firsts == [0.0, 0.5, 1.0]


def test_generate_inflow_sorted_by_time():
    plans = generate_inflow(OCR, seed=0)
    times = [p.time_s for p in plans]
    assert times == sorted(times)


def test_generate_inflow_validation():
    with pytest.raises(ValueError):
        generate_inflow(OCR, devices=0)
    with pytest.raises(ValueError):
        generate_inflow(OCR, think_time_s=0)


@given(st.integers(1, 6), st.integers(1, 10), st.integers(0, 3))
def test_generate_inflow_property_counts(devices, per_device, seed):
    plans = generate_inflow(OCR, devices=devices, requests_per_device=per_device,
                            seed=seed)
    assert len(plans) == devices * per_device
    for p in plans:
        assert p.request.device_id == p.device_id
        assert 0 <= p.request.seq_on_device < per_device


def test_poisson_inflow_rate_roughly_holds():
    plans = poisson_inflow(LINPACK, rate_per_s=2.0, horizon_s=500.0, seed=1)
    assert len(plans) == pytest.approx(1000, rel=0.15)
    assert all(0 < p.time_s < 500 for p in plans)


def test_poisson_inflow_validation():
    with pytest.raises(ValueError):
        poisson_inflow(LINPACK, rate_per_s=0, horizon_s=10)
    with pytest.raises(ValueError):
        poisson_inflow(LINPACK, rate_per_s=1, horizon_s=0)


def test_mixed_inflow_draws_all_profiles():
    from repro.workloads import generate_mixed_inflow

    plans = generate_mixed_inflow(ALL_WORKLOADS, devices=5,
                                  requests_per_device=20, seed=1)
    assert len(plans) == 100
    apps = {p.request.app_id for p in plans}
    assert apps == {"ocr", "chess", "virusscan", "linpack"}
    # Each device runs a mix, not a single app.
    per_device = {}
    for p in plans:
        per_device.setdefault(p.device_id, set()).add(p.request.app_id)
    assert all(len(apps) >= 2 for apps in per_device.values())


def test_mixed_inflow_validation():
    from repro.workloads import generate_mixed_inflow

    with pytest.raises(ValueError):
        generate_mixed_inflow([])
    with pytest.raises(ValueError):
        generate_mixed_inflow(ALL_WORKLOADS, devices=0)


def test_mixed_inflow_end_to_end_warehouse_holds_all_apps():
    from repro.network import make_link
    from repro.offload import run_inflow_experiment
    from repro.platform import RattrapPlatform
    from repro.sim import Environment
    from repro.workloads import generate_mixed_inflow

    env = Environment()
    plat = RattrapPlatform(env)
    plans = generate_mixed_inflow(ALL_WORKLOADS, devices=3,
                                  requests_per_device=10, seed=2)
    results = run_inflow_experiment(env, plat, plans, make_link("lan-wifi"))
    assert len(results) == 30
    # Every app's code was uploaded exactly once, platform-wide.
    assert len(plat.warehouse) == len({p.request.app_id for p in plans})
    cold_uploads = sum(1 for r in results if not r.code_cache_hit)
    assert cold_uploads == len(plat.warehouse)
    # Containers accumulate multiple warm apps.
    assert any(len(rec.runtime.loaded_apps) >= 2 for rec in plat.db.all_records())


def test_derive_profile():
    from repro.workloads import derive_profile

    blitz = derive_profile(CHESS_GAME, "blitz", cloud_cpu_s=0.3, local_time_s=1.2)
    assert blitz.name == "blitz"
    assert blitz.cloud_cpu_s == 0.3
    assert blitz.code_size_kb == CHESS_GAME.code_size_kb  # inherited
    assert CHESS_GAME.cloud_cpu_s != 0.3  # original untouched
    with pytest.raises(ValueError, match="unknown profile fields"):
        derive_profile(CHESS_GAME, "x", warp_speed=9)
    # method form
    assert CHESS_GAME.derive("quick", local_time_s=2.0).local_time_s == 2.0
