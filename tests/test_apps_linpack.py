"""Tests for the Linpack kernel (LU with partial pivoting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import linpack_benchmark, linpack_solve, lu_factor, lu_solve


def test_lu_reconstructs_matrix():
    rng = np.random.default_rng(0)
    a = rng.uniform(-1, 1, size=(8, 8))
    lu, piv = lu_factor(a)
    # Rebuild P A = L U.
    n = 8
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    pa = a.copy()
    for k in range(n - 1):
        p = piv[k]
        if p != k:
            pa[[k, p], :] = pa[[p, k], :]
    assert np.allclose(lower @ upper, pa, atol=1e-10)


def test_solve_matches_numpy():
    rng = np.random.default_rng(1)
    a = rng.uniform(-1, 1, size=(20, 20))
    b = rng.uniform(-1, 1, size=20)
    assert np.allclose(linpack_solve(a, b), np.linalg.solve(a, b), atol=1e-8)


def test_solve_identity():
    b = np.arange(5.0)
    assert np.allclose(linpack_solve(np.eye(5), b), b)


def test_nonsquare_rejected():
    with pytest.raises(ValueError):
        lu_factor(np.ones((3, 4)))


def test_singular_rejected():
    with pytest.raises(np.linalg.LinAlgError):
        lu_factor(np.zeros((3, 3)))
    # Singularity surfacing in the last pivot.
    a = np.array([[1.0, 0.0], [2.0, 0.0]])
    with pytest.raises(np.linalg.LinAlgError):
        lu_factor(a)


def test_wrong_rhs_length_rejected():
    lu, piv = lu_factor(np.eye(3))
    with pytest.raises(ValueError):
        lu_solve(lu, piv, np.ones(4))


def test_pivoting_handles_zero_leading_entry():
    a = np.array([[0.0, 1.0], [1.0, 0.0]])
    b = np.array([2.0, 3.0])
    assert np.allclose(linpack_solve(a, b), np.array([3.0, 2.0]))


def test_input_matrix_not_mutated():
    a = np.eye(4)
    snapshot = a.copy()
    lu_factor(a)
    assert np.array_equal(a, snapshot)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 25), st.integers(0, 10_000))
def test_property_solution_residual_small(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n)) + n * np.eye(n)  # well conditioned
    x_true = rng.uniform(-1, 1, size=n)
    b = a @ x_true
    x = linpack_solve(a, b)
    assert np.allclose(x, x_true, atol=1e-7)


def test_benchmark_reports_sane_metrics():
    result = linpack_benchmark(n=120, seed=3)
    assert result.n == 120
    assert result.elapsed_s > 0
    assert result.mflops > 0
    assert result.passed, f"normalized residual too large: {result.normalized_residual}"


def test_benchmark_validation():
    with pytest.raises(ValueError):
        linpack_benchmark(n=1)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 40), st.integers(1, 16), st.integers(0, 1000))
def test_property_blocked_matches_unblocked(n, block, seed):
    from repro.apps import lu_factor_blocked

    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n)) + n * np.eye(n)
    lu1, p1 = lu_factor(a)
    lu2, p2 = lu_factor_blocked(a, block=block)
    assert np.allclose(lu1, lu2, atol=1e-10)
    assert np.array_equal(p1, p2)


def test_blocked_solve_end_to_end():
    rng = np.random.default_rng(9)
    a = rng.uniform(-1, 1, size=(150, 150))
    b = rng.uniform(-1, 1, size=150)
    x = linpack_solve(a, b, block=32)
    assert np.allclose(a @ x, b, atol=1e-8)
