"""End-to-end platform tests: the full offloading lifecycle on all three
platforms, checking the paper's headline behaviours."""

import pytest

from repro.network import make_link
from repro.offload import Phase, run_inflow_experiment
from repro.platform import RattrapPlatform, VMCloudPlatform
from repro.platform.access import RequestAccessController
from repro.offload.request import OffloadRequest
from repro.sim import Environment
from repro.workloads import CHESS_GAME, LINPACK, OCR, VIRUS_SCAN, generate_inflow

KB = 1024


def run_platform(platform_name, profile, devices=5, per_device=20, scenario="lan-wifi",
                 seed=1, env_out=None):
    env = Environment()
    if platform_name == "vm":
        plat = VMCloudPlatform(env)
    else:
        plat = RattrapPlatform(env, optimized=(platform_name == "rattrap"))
    plans = generate_inflow(profile, devices=devices, requests_per_device=per_device,
                            seed=seed)
    results = run_inflow_experiment(env, plat, plans, make_link(scenario))
    if env_out is not None:
        env_out.append((env, plat))
    return results


def mean_phase(results, phase):
    return sum(r.phase(phase) for r in results) / len(results)


# ------------------------------------------------------------ single request
def test_single_request_lifecycle_vm():
    env = Environment()
    plat = VMCloudPlatform(env)
    req = OffloadRequest(request_id=0, device_id="d0", app_id="chess",
                         profile=CHESS_GAME)
    result = env.run(until=plat.submit(req, make_link("lan-wifi")))
    assert result.executed_on == "cid-1"
    assert not result.blocked
    assert result.phase(Phase.PREPARATION) == pytest.approx(28.72, rel=0.02)
    assert result.phase(Phase.CONNECTION) > 0
    assert result.phase(Phase.TRANSFER) > 0
    assert result.phase(Phase.EXECUTION) > 0
    assert result.response_time == pytest.approx(result.timeline.total)
    # Cold VM start makes the first ChessGame request an offloading failure.
    assert result.offloading_failure


def test_single_request_lifecycle_rattrap():
    env = Environment()
    plat = RattrapPlatform(env, optimized=True)
    req = OffloadRequest(request_id=0, device_id="d0", app_id="chess",
                         profile=CHESS_GAME)
    result = env.run(until=plat.submit(req, make_link("lan-wifi")))
    assert result.phase(Phase.PREPARATION) == pytest.approx(
        1.75 + plat.access.analysis_time_s, rel=0.05
    )
    # Rattrap's fast boot keeps even the cold request profitable.
    assert not result.offloading_failure


def test_second_request_is_warm():
    env = Environment()
    plat = RattrapPlatform(env, optimized=True)
    link = make_link("lan-wifi")
    r1 = env.run(until=plat.submit(
        OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    r2 = env.run(until=plat.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link))
    assert r2.phase(Phase.PREPARATION) < 0.05
    assert r2.code_cache_hit
    assert not r1.code_cache_hit
    # Warm execution skips the code load.
    assert r2.phase(Phase.EXECUTION) < r1.phase(Phase.EXECUTION)


# -------------------------------------------------------------- fleet runs
@pytest.fixture(scope="module")
def chess_runs():
    return {
        name: run_platform(name, CHESS_GAME)
        for name in ("vm", "wo", "rattrap")
    }


def test_platforms_serve_all_requests(chess_runs):
    for results in chess_runs.values():
        assert len(results) == 100
        assert all(not r.blocked for r in results)


def test_runtime_prep_ordering_and_ratios(chess_runs):
    prep = {k: mean_phase(v, Phase.PREPARATION) for k, v in chess_runs.items()}
    assert prep["vm"] > prep["wo"] > prep["rattrap"]
    # Fig. 9: ~4.1-4.7x for W/O, ~16x for Rattrap.
    assert prep["vm"] / prep["wo"] == pytest.approx(4.4, abs=0.4)
    assert prep["vm"] / prep["rattrap"] == pytest.approx(16.0, abs=1.0)


def test_transfer_improves_with_code_cache(chess_runs):
    xfer = {k: mean_phase(v, Phase.TRANSFER) for k, v in chess_runs.items()}
    assert xfer["rattrap"] < xfer["wo"]
    assert xfer["rattrap"] < xfer["vm"]
    # W/O gets no transfer improvement (no cache).
    assert xfer["wo"] == pytest.approx(xfer["vm"], rel=0.25)


def test_migrated_bytes_match_table2(chess_runs):
    up = {k: sum(r.bytes_up for r in v) / KB for k, v in chess_runs.items()}
    down = {k: sum(r.bytes_down for r in v) / KB for k, v in chess_runs.items()}
    assert up["vm"] == pytest.approx(13301, rel=0.01)
    assert up["wo"] == pytest.approx(13301, rel=0.01)
    assert up["rattrap"] == pytest.approx(4788, rel=0.01)
    for k in down:
        assert down[k] == pytest.approx(34, rel=0.05)


def test_code_uploaded_once_with_cache(chess_runs):
    code_uploads = sum(1 for r in chess_runs["rattrap"] if not r.code_cache_hit)
    assert code_uploads == 1
    # VM: one per device (5 isolated VMs).
    vm_cold = sum(1 for r in chess_runs["vm"] if not r.code_cache_hit)
    assert vm_cold == 5


def test_first_request_failures_only_on_slow_platforms(chess_runs):
    vm_fails = [r for r in chess_runs["vm"] if r.offloading_failure]
    assert len(vm_fails) == 5
    assert all(r.request.seq_on_device == 0 for r in vm_fails)
    assert sum(r.offloading_failure for r in chess_runs["rattrap"]) == 0


def test_virusscan_execution_gains_most_from_rattrap():
    exe = {}
    for name in ("vm", "wo", "rattrap"):
        virus = run_platform(name, VIRUS_SCAN)
        exe[name] = mean_phase(virus, Phase.EXECUTION)
    # Fig. 9: container I/O advantage, amplified by in-memory fs.
    wo_speedup = exe["vm"] / exe["wo"]
    rt_speedup = exe["vm"] / exe["rattrap"]
    assert 1.05 < wo_speedup < 1.25
    assert 1.25 < rt_speedup < 1.55
    assert rt_speedup > wo_speedup


def test_linpack_execution_gains_least():
    exe = {}
    for name in ("vm", "rattrap"):
        linpack = run_platform(name, LINPACK)
        exe[name] = mean_phase(linpack, Phase.EXECUTION)
    assert 1.0 < exe["vm"] / exe["rattrap"] < 1.10


def test_rattrap_burns_offload_data_after_reading():
    env_out = []
    run_platform("rattrap", OCR, env_out=env_out)
    env, plat = env_out[0]
    io = plat.shared_layer.offload_io
    assert io.total_staged > 0
    assert io.total_burned == io.total_staged
    assert io.resident_bytes == 0
    assert env.now > 0


def test_rattrap_server_memory_footprint_lower():
    env_out = []
    run_platform("rattrap", CHESS_GAME, env_out=env_out)
    _, rt = env_out[0]
    run_platform("vm", CHESS_GAME, env_out=env_out)
    _, vm = env_out[1]
    # 5 x 96 MB vs 5 x 512 MB: >= 75 % memory saved (Table I).
    rt_mem = rt.db.total_memory_mb()
    vm_mem = vm.db.total_memory_mb()
    assert rt_mem == 5 * 96.0
    assert vm_mem == 5 * 512.0
    assert 1 - rt_mem / vm_mem >= 0.75


def test_rattrap_disk_footprint_much_lower():
    env_out = []
    run_platform("rattrap", CHESS_GAME, env_out=env_out)
    _, rt = env_out[0]
    # Per-container private disk is 7.1 MB.
    per_container = rt.db.total_disk_bytes() / len(rt.db)
    assert per_container == pytest.approx(7.1 * 1024 * KB, abs=KB)


def test_warehouse_state_after_run():
    env_out = []
    run_platform("rattrap", CHESS_GAME, env_out=env_out)
    _, plat = env_out[0]
    assert plat.warehouse.has_code("chess")
    # All five containers registered as holding the code.
    assert len(plat.warehouse.containers_for("chess")) == 5
    assert plat.warehouse.hit_rate > 0.9


def test_access_controller_blocks_bad_app_end_to_end():
    env = Environment()
    ac = RequestAccessController(violation_threshold=1)
    plat = RattrapPlatform(env, optimized=True, access_controller=ac)
    link = make_link("lan-wifi")
    r1 = env.run(until=plat.submit(
        OffloadRequest(0, "d0", "malware", CHESS_GAME), link))
    assert not r1.blocked
    # A forbidden workflow out of the container trips the threshold.
    ac.filter_operation("malware", "warehouse.poison")
    r2 = env.run(until=plat.submit(
        OffloadRequest(1, "d0", "malware", CHESS_GAME, seq_on_device=1), link))
    assert r2.blocked
    assert r2.response_time < 1.0  # rejected right after connection


def test_rattrap_shutdown_unloads_driver():
    env_out = []
    run_platform("rattrap", LINPACK, devices=2, per_device=2, env_out=env_out)
    env, plat = env_out[0]
    removed = plat.shutdown()
    assert "binder_linux" in removed
    assert not plat.server.android_ready()
    assert plat.server.memory.reserved_mb == 0


def test_same_inflow_identical_across_platforms():
    # The "same inflow of requests" discipline: request ids and think
    # gaps must be identical for every platform under one seed.
    a = generate_inflow(OCR, seed=42)
    b = generate_inflow(OCR, seed=42)
    assert [(p.time_s, p.gap_s, p.request.request_id) for p in a] == [
        (p.time_s, p.gap_s, p.request.request_id) for p in b
    ]


def test_keepalive_skips_handshake_on_followups():
    from repro.platform import RattrapPlatform
    from repro.sim import Environment

    env = Environment()
    plat = RattrapPlatform(env)
    plat.keepalive_s = 60.0
    link = make_link("wan-wifi")  # 60 ms latency makes the handshake visible
    r1 = env.run(until=plat.submit(
        OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    r2 = env.run(until=plat.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link))
    # First request pays ~3 one-way latencies + guest net; the follow-up
    # only the guest net overhead.
    assert r1.phase(Phase.CONNECTION) > 0.15
    assert r2.phase(Phase.CONNECTION) < 0.05


def test_keepalive_expires_after_window():
    from repro.platform import RattrapPlatform
    from repro.sim import Environment

    env = Environment()
    plat = RattrapPlatform(env)
    plat.keepalive_s = 10.0
    link = make_link("wan-wifi")
    env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    env.run(until=env.now + 60.0)  # socket idles out
    r = env.run(until=plat.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link))
    assert r.phase(Phase.CONNECTION) > 0.15


def test_keepalive_per_device_isolation():
    from repro.platform import RattrapPlatform
    from repro.sim import Environment

    env = Environment()
    plat = RattrapPlatform(env)
    plat.keepalive_s = 60.0
    link = make_link("wan-wifi")
    env.run(until=plat.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    # A different device still pays the full handshake.
    r = env.run(until=plat.submit(
        OffloadRequest(1, "d1", "chess", CHESS_GAME), link))
    assert r.phase(Phase.CONNECTION) > 0.15


def test_stress_thousand_requests_settle_cleanly():
    """Scalability smoke: a 1000-request open-loop Poisson storm leaves
    no dangling state."""
    from repro.platform import RattrapPlatform
    from repro.sim import Environment
    from repro.workloads import LINPACK, poisson_inflow

    env = Environment()
    plat = RattrapPlatform(env)
    plans = poisson_inflow(LINPACK, rate_per_s=2.0, horizon_s=500.0,
                           devices=10, seed=3)
    results = run_inflow_experiment(env, plat, plans, make_link("lan-wifi"),
                                    mode="open")
    assert len(results) == len(plans)
    assert plat.scheduler.active_requests == 0
    assert plat.shared_layer.offload_io.resident_bytes == 0
    assert plat.server.cpu.active_jobs == 0
    assert len(plat.db) == 10  # one container per device
    assert all(not r.blocked for r in results)
