"""Tests for the parallel experiment engine (cells, fan-out, bench)."""

import json

import pytest

from repro.experiments import (
    BENCH_SCHEMA_VERSION,
    Cell,
    benchmark_payload,
    collect_timings,
    default_jobs,
    fig9_performance,
    run_cells,
    table2_migrated,
)
from repro.experiments import engine
from repro.experiments.runner import EXPERIMENTS, main, run_experiment


def _square(x):
    return x * x


def _cells(n=4):
    return [
        Cell(experiment="toy", key=(i,), fn=_square, kwargs={"x": i})
        for i in range(n)
    ]


# ---------------------------------------------------------------- run_cells
def test_run_cells_serial_order():
    assert run_cells(_cells(), jobs=0) == [0, 1, 4, 9]
    assert run_cells(_cells(), jobs=1) == [0, 1, 4, 9]


def test_run_cells_empty():
    assert run_cells([], jobs=4) == []


def test_run_cells_rejects_negative_jobs():
    with pytest.raises(ValueError):
        run_cells(_cells(), jobs=-1)


def test_run_cells_parallel_matches_serial():
    assert run_cells(_cells(8), jobs=4) == run_cells(_cells(8), jobs=0)


def test_run_cells_jobs_none_uses_cpu_count():
    assert default_jobs() >= 1
    assert run_cells(_cells(), jobs=None) == [0, 1, 4, 9]


def test_run_cells_falls_back_to_serial_when_pool_unavailable(monkeypatch):
    def broken_pool(cells, workers):
        raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(engine, "_run_pool", broken_pool)
    assert run_cells(_cells(), jobs=4) == [0, 1, 4, 9]


def test_collect_timings_records_every_cell():
    with collect_timings() as timings:
        run_cells(_cells(3), jobs=0)
    assert [(t.experiment, t.key) for t in timings] == [
        ("toy", (0,)), ("toy", (1,)), ("toy", (2,)),
    ]
    assert all(t.wall_s >= 0 for t in timings)


def test_timings_dropped_outside_collector():
    with collect_timings() as timings:
        pass
    run_cells(_cells(2), jobs=0)
    assert timings == []


# ---------------------------------------------- experiment-level determinism
@pytest.mark.parametrize("module", [fig9_performance, table2_migrated],
                         ids=["fig9", "table2"])
def test_experiment_parallel_identical_to_serial(module):
    serial = module.run(jobs=0)
    parallel = module.run(jobs=4)
    assert parallel == serial
    assert module.report(parallel) == module.report(serial)


def test_every_experiment_exposes_cells_protocol():
    for name, (module, _) in EXPERIMENTS.items():
        assert callable(getattr(module, "cells")), name
        assert callable(getattr(module, "merge")), name
        cs = module.cells()
        assert cs, name
        assert all(isinstance(c, Cell) for c in cs), name


def test_run_experiment_jobs_flag_identical():
    assert run_experiment("fig6", jobs=2) == run_experiment("fig6", jobs=0)


# ------------------------------------------------------------ bench artifact
def test_benchmark_payload_schema():
    with collect_timings() as timings:
        run_cells(_cells(2), jobs=0)
    payload = benchmark_payload(
        [{"name": "toy", "wall_s": 0.5, "timings": timings}],
        jobs=0,
        total_wall_s=0.5,
    )
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    assert set(payload) == {
        "schema_version", "jobs", "cpu_count", "total_wall_s", "experiments",
    }
    (row,) = payload["experiments"]
    assert set(row) == {
        "name", "wall_s", "p99_wall_s", "devices", "devices_per_s",
        "cache_hit_rate", "local_fraction", "epochs_run", "epochs_skipped",
        "cells",
    }
    assert row["cells"] == [
        {"key": [0], "wall_s": timings[0].wall_s, "devices": None,
         "cache_hit_rate": None, "local_fraction": None,
         "epochs_run": None, "epochs_skipped": None},
        {"key": [1], "wall_s": timings[1].wall_s, "devices": None,
         "cache_hit_rate": None, "local_fraction": None,
         "epochs_run": None, "epochs_skipped": None},
    ]
    # nearest-rank p99 over 2 cells is the slower one
    assert row["p99_wall_s"] == max(t.wall_s for t in timings)
    # toy cells report no fleet, so v3's throughput fields stay null
    assert row["devices"] is None
    assert row["devices_per_s"] is None
    # ...and no cache either, so v4's hit-rate field stays null
    assert row["cache_hit_rate"] is None
    # ...and no partition layer, so v5's local fraction stays null
    assert row["local_fraction"] is None
    # ...and no sharded kernel, so v6's epoch counters stay null
    assert row["epochs_run"] is None
    assert row["epochs_skipped"] is None
    empty = benchmark_payload(
        [{"name": "none", "wall_s": 0.1}], jobs=0, total_wall_s=0.1
    )
    assert empty["experiments"][0]["p99_wall_s"] is None


def _fleet_cell(devices):
    return {"devices": devices, "completed": devices}


def test_benchmark_payload_device_throughput():
    # Cells returning a mapping with "devices" roll up into the v3
    # per-experiment throughput: devices summed over device cells,
    # divided by their summed wall-clock.
    cells = [
        Cell(experiment="scale", key=(n,), fn=_fleet_cell, kwargs={"devices": n})
        for n in (1000, 2500)
    ]
    with collect_timings() as timings:
        run_cells(cells, jobs=0)
    assert [t.devices for t in timings] == [1000, 2500]
    payload = benchmark_payload(
        [{"name": "scale", "wall_s": 0.5, "timings": timings}],
        jobs=0,
        total_wall_s=0.5,
    )
    (row,) = payload["experiments"]
    assert row["devices"] == 3500
    wall = sum(t.wall_s for t in timings)
    assert row["devices_per_s"] == pytest.approx(3500 / wall)
    assert [c["devices"] for c in row["cells"]] == [1000, 2500]


def _cache_cell(rate):
    return {"devices": 100, "cache_hit_rate": rate}


def test_benchmark_payload_cache_hit_rate():
    # Cells returning "cache_hit_rate" roll up into the v4 per-
    # experiment mean over reporting cells.
    cells = [
        Cell(experiment="cachebench", key=(r,), fn=_cache_cell, kwargs={"rate": r})
        for r in (0.0, 0.9)
    ]
    with collect_timings() as timings:
        run_cells(cells, jobs=0)
    assert [t.cache_hit_rate for t in timings] == [0.0, 0.9]
    payload = benchmark_payload(
        [{"name": "cachebench", "wall_s": 0.5, "timings": timings}],
        jobs=0,
        total_wall_s=0.5,
    )
    (row,) = payload["experiments"]
    assert row["cache_hit_rate"] == pytest.approx(0.45)
    assert [c["cache_hit_rate"] for c in row["cells"]] == [0.0, 0.9]


def _partition_cell(fraction):
    return {"devices": 6, "local_fraction": fraction}


def test_benchmark_payload_local_fraction():
    # Cells returning "local_fraction" roll up into the v5 per-
    # experiment mean over reporting cells.
    cells = [
        Cell(experiment="partition", key=(f,), fn=_partition_cell,
             kwargs={"fraction": f})
        for f in (0.0, 0.5)
    ]
    with collect_timings() as timings:
        run_cells(cells, jobs=0)
    assert [t.local_fraction for t in timings] == [0.0, 0.5]
    payload = benchmark_payload(
        [{"name": "partition", "wall_s": 0.5, "timings": timings}],
        jobs=0,
        total_wall_s=0.5,
    )
    (row,) = payload["experiments"]
    assert row["local_fraction"] == pytest.approx(0.25)
    assert [c["local_fraction"] for c in row["cells"]] == [0.0, 0.5]


def _sharded_cell(run, skipped):
    return {"devices": 50, "epochs_run": run, "epochs_skipped": skipped}


def test_benchmark_payload_epoch_counters():
    # Cells returning "epochs_run"/"epochs_skipped" roll up into the
    # v6 per-experiment sums over reporting cells.
    cells = [
        Cell(experiment="megascale", key=(run,), fn=_sharded_cell,
             kwargs={"run": run, "skipped": skipped})
        for run, skipped in ((300, 900), (100, 0))
    ]
    with collect_timings() as timings:
        run_cells(cells, jobs=0)
    assert [t.epochs_run for t in timings] == [300, 100]
    assert [t.epochs_skipped for t in timings] == [900, 0]
    payload = benchmark_payload(
        [{"name": "megascale", "wall_s": 0.5, "timings": timings}],
        jobs=0,
        total_wall_s=0.5,
    )
    (row,) = payload["experiments"]
    assert row["epochs_run"] == 400
    assert row["epochs_skipped"] == 900
    assert [c["epochs_run"] for c in row["cells"]] == [300, 100]
    assert [c["epochs_skipped"] for c in row["cells"]] == [900, 0]


def test_runner_bench_writes_stable_schema(tmp_path, capsys):
    bench = tmp_path / "BENCH_experiments.json"
    assert main(["--bench", str(bench), "sec3e"]) == 0
    payload = json.loads(bench.read_text())
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    assert payload["jobs"] == 0
    assert payload["total_wall_s"] > 0
    (row,) = payload["experiments"]
    assert row["name"] == "sec3e"
    assert row["cells"] and all(
        set(c) == {"key", "wall_s", "devices", "cache_hit_rate",
                   "local_fraction", "epochs_run", "epochs_skipped"}
        for c in row["cells"]
    )
