"""Unit + property tests for monitoring probes and RNG streams."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    Counter,
    Environment,
    RandomStreams,
    RateTracker,
    Tally,
    TimeSeries,
    UtilizationTracker,
)


# --------------------------------------------------------------- TimeSeries
def test_timeseries_step_lookup():
    ts = TimeSeries("x")
    ts.record(0.0, 1.0)
    ts.record(5.0, 3.0)
    assert ts.value_at(-1.0) == 0.0
    assert ts.value_at(0.0) == 1.0
    assert ts.value_at(4.999) == 1.0
    assert ts.value_at(5.0) == 3.0
    assert ts.value_at(100.0) == 3.0


def test_timeseries_rejects_time_travel():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 2.0)


def test_timeseries_resample_grid():
    ts = TimeSeries()
    ts.record(0.0, 2.0)
    ts.record(2.0, 4.0)
    grid = ts.resample(0.0, 4.0, 1.0)
    assert list(grid) == [2.0, 2.0, 4.0, 4.0]


def test_timeseries_resample_dt_validation():
    with pytest.raises(ValueError):
        TimeSeries().resample(0, 1, 0)


def test_timeseries_time_average_exact():
    ts = TimeSeries()
    ts.record(0.0, 0.0)
    ts.record(1.0, 10.0)
    # value is 0 on [0,1), 10 on [1,2] -> mean over [0,2] is 5
    assert ts.time_average(0.0, 2.0) == pytest.approx(5.0)


def test_timeseries_time_average_validation():
    with pytest.raises(ValueError):
        TimeSeries().time_average(1.0, 1.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=-50, max_value=50),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_timeseries_average_bounded_by_extremes(samples):
    samples = sorted(samples, key=lambda s: s[0])
    ts = TimeSeries()
    last_t = -1.0
    values = []
    for t, v in samples:
        if t <= last_t:
            continue
        ts.record(t, v)
        values.append(v)
        last_t = t
    if not values:
        return
    avg = ts.time_average(samples[0][0], last_t + 10.0)
    lo = min(values + [0.0]) - 1e-9
    hi = max(values + [0.0]) + 1e-9
    assert lo <= avg <= hi


# ------------------------------------------------------------------ Counter
def test_counter_totals_and_rate_bins():
    c = Counter()
    c.add(0.5, 10)
    c.add(1.5, 20)
    c.add(1.9, 5)
    assert c.total == 35
    assert len(c) == 3
    bins = c.rate_series(0.0, 3.0, 1.0)
    assert list(bins) == [10.0, 25.0, 0.0]


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().add(0.0, -1)


def test_counter_rate_dt_validation():
    with pytest.raises(ValueError):
        Counter().rate_series(0, 1, 0)


def test_counter_rate_respects_window():
    c = Counter()
    c.add(10.0, 100.0)
    assert c.rate_series(0.0, 5.0).sum() == 0.0


# ------------------------------------------------------- UtilizationTracker
def test_utilization_tracks_busy_capacity():
    env = Environment()
    u = UtilizationTracker(env, capacity=4)

    def proc(env):
        u.acquire(2)
        yield env.timeout(10)
        u.release(2)

    env.process(proc(env))
    env.run()
    series = u.percent_series(0.0, 20.0, 1.0)
    assert series[0] == pytest.approx(50.0)
    assert series[-1] == pytest.approx(0.0)
    assert u.mean_percent(0.0, 20.0) == pytest.approx(25.0)


def test_utilization_over_capacity_rejected():
    env = Environment()
    u = UtilizationTracker(env, capacity=1)
    u.acquire(1)
    with pytest.raises(ValueError):
        u.acquire(0.5)


def test_utilization_over_release_rejected():
    env = Environment()
    u = UtilizationTracker(env, capacity=1)
    with pytest.raises(ValueError):
        u.release(1)


def test_utilization_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        UtilizationTracker(env, capacity=0)


# -------------------------------------------------------------- RateTracker
def test_rate_tracker_mbps():
    env = Environment()
    rt = RateTracker(env, "disk")

    def proc(env):
        rt.read(1024 * 1024)
        yield env.timeout(1)
        rt.write(2 * 1024 * 1024)

    env.process(proc(env))
    env.run()
    series = rt.mbps_series(0.0, 2.0, 1.0)
    assert series["read"][0] == pytest.approx(1.0)
    assert series["write"][1] == pytest.approx(2.0)


# -------------------------------------------------------------------- Tally
def test_tally_basic_stats():
    t = Tally()
    for v in (1.0, 2.0, 3.0, 4.0):
        t.add(v)
    assert t.count == 4
    assert t.mean == pytest.approx(2.5)
    assert t.minimum == 1.0
    assert t.maximum == 4.0
    assert t.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))


def test_tally_empty_mean_nan():
    assert math.isnan(Tally().mean)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
def test_tally_matches_numpy(values):
    t = Tally()
    for v in values:
        t.add(v)
    assert t.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    assert t.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-3)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
)
def test_tally_merge_equals_combined(a, b):
    ta, tb, tall = Tally(), Tally(), Tally()
    for v in a:
        ta.add(v)
        tall.add(v)
    for v in b:
        tb.add(v)
        tall.add(v)
    ta.merge(tb)
    assert ta.count == tall.count
    assert ta.mean == pytest.approx(tall.mean, rel=1e-9, abs=1e-6)
    assert ta.variance == pytest.approx(tall.variance, rel=1e-6, abs=1e-3)


def test_tally_merge_with_empty():
    t = Tally()
    t.add(5.0)
    t.merge(Tally())
    assert t.count == 1
    empty = Tally()
    empty.merge(t)
    assert empty.count == 1 and empty.mean == 5.0


# ------------------------------------------------------------ RandomStreams
def test_streams_deterministic_per_name():
    s1 = RandomStreams(seed=7)
    s2 = RandomStreams(seed=7)
    assert s1.get("a").random() == s2.get("a").random()


def test_streams_independent_across_names():
    s = RandomStreams(seed=7)
    a = s.get("a").random(100)
    b = s.get("b").random(100)
    assert not np.allclose(a, b)


def test_streams_cached_identity():
    s = RandomStreams(seed=0)
    assert s.get("x") is s.get("x")


def test_streams_differ_across_seeds():
    assert RandomStreams(1).get("x").random() != RandomStreams(2).get("x").random()


def test_streams_fork_independent():
    s = RandomStreams(seed=3)
    f = s.fork("child")
    assert s.get("x").random() != f.get("x").random()


def test_streams_reset_restarts_sequences():
    s = RandomStreams(seed=9)
    first = s.get("x").random()
    s.get("x").random()
    s.reset()
    assert s.get("x").random() == first


# -------------------------------------------------------------- EventTracer
def test_event_tracer_records_processed_events():
    from repro.sim import Environment, EventTracer

    env = Environment()
    tracer = EventTracer(env)

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    counts = tracer.counts()
    assert counts.get("Timeout", 0) == 2
    assert counts.get("Process", 0) == 1
    assert len(tracer) >= 3
    assert tracer.failures() == []


def test_event_tracer_detach_stops_recording():
    from repro.sim import Environment, EventTracer

    env = Environment()
    tracer = EventTracer(env)
    env.timeout(1.0)
    env.run()
    n = len(tracer)
    tracer.detach()
    env.timeout(1.0)
    env.run()
    assert len(tracer) == n


def test_event_tracer_caps_entries():
    from repro.sim import Environment, EventTracer

    env = Environment()
    tracer = EventTracer(env, max_entries=5)
    for _ in range(20):
        env.timeout(1.0)
    env.run()
    assert len(tracer) == 5
    assert tracer.dropped > 0


def test_event_tracer_windows_and_busiest():
    from repro.sim import Environment, EventTracer

    env = Environment()
    tracer = EventTracer(env)
    for i in range(3):
        env.timeout(0.5)
    env.timeout(5.0)
    env.run()
    assert len(tracer.between(0.0, 1.0)) == 3
    second, count = tracer.busiest_second()
    assert second == 0 and count == 3
    assert EventTracer(Environment()).busiest_second() is None


def test_event_tracer_validation():
    from repro.sim import Environment, EventTracer

    with pytest.raises(ValueError):
        EventTracer(Environment(), max_entries=0)
