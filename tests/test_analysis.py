"""Tests for result metrics, table rendering and time-series helpers."""

import numpy as np
import pytest

from repro.analysis import (
    failure_rate,
    format_cell,
    fraction_above,
    normalize_to,
    per_request_phase_table,
    phase_means,
    render_table,
    server_load_series,
    sparkline,
    speedup_cdf,
    speedups,
)
from repro.hostos import CloudServer
from repro.offload import OffloadRequest, Phase, PhaseTimeline, RequestResult
from repro.sim import Environment
from repro.workloads import CHESS_GAME


def _result(rid, device, response_s, phases=None, blocked=False, seq=0):
    tl = PhaseTimeline()
    for phase, dur in (phases or {Phase.EXECUTION: response_s}).items():
        tl.add(phase, dur)
    return RequestResult(
        request=OffloadRequest(rid, device, "chess", CHESS_GAME, seq_on_device=seq),
        timeline=tl,
        started_at=0.0,
        finished_at=response_s,
        blocked=blocked,
    )


# ----------------------------------------------------------------- metrics
def test_phase_means_averages_served_only():
    results = [
        _result(0, "d0", 2.0, {Phase.EXECUTION: 1.5, Phase.TRANSFER: 0.5}),
        _result(1, "d0", 4.0, {Phase.EXECUTION: 3.0, Phase.TRANSFER: 1.0}),
        _result(2, "d0", 9.0, blocked=True),
    ]
    summary = phase_means(results)
    assert summary.execution == pytest.approx(2.25)
    assert summary.transfer == pytest.approx(0.75)
    assert summary.total == pytest.approx(3.0)
    assert set(summary.as_dict()) == {p.value for p in Phase}


def test_metrics_reject_empty():
    with pytest.raises(ValueError):
        phase_means([])
    with pytest.raises(ValueError):
        speedups([_result(0, "d", 1.0, blocked=True)])


def test_speedups_and_failures():
    results = [_result(0, "d", 1.0), _result(1, "d", 8.0)]  # local = 4 s
    s = speedups(results)
    assert list(s) == [4.0, 0.5]
    assert failure_rate(results) == 0.5
    assert fraction_above(results, 3.0) == 0.5
    assert fraction_above(results, 10.0) == 0.0


def test_speedup_cdf_monotone():
    results = [_result(i, "d", 1.0 + i) for i in range(10)]
    values, probs = speedup_cdf(results)
    assert np.all(np.diff(values) <= 1e-12) or np.all(np.diff(values) >= -1e-12)
    assert probs[0] == pytest.approx(0.1)
    assert probs[-1] == pytest.approx(1.0)


def test_per_request_phase_table_orders_by_seq():
    results = [
        _result(1, "d0", 2.0, seq=1),
        _result(0, "d0", 3.0, seq=0),
        _result(2, "d1", 4.0, seq=0),
    ]
    rows = per_request_phase_table(results, "d0")
    assert [r["request"] for r in rows] == [0, 1]
    assert "speedup" in rows[0]


def test_normalize_to():
    normalized = normalize_to({"a": 2.0, "b": 4.0}, "a")
    assert normalized == {"a": 1.0, "b": 2.0}
    with pytest.raises(ValueError):
        normalize_to({"a": 0.0}, "a")


# ------------------------------------------------------------------- tables
def test_render_table_alignment_and_title():
    text = render_table(["name", "value"], [["x", 1.5], ["longer", 20]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    assert all(len(l) == len(lines[2]) for l in lines[3:])


def test_render_table_validation():
    with pytest.raises(ValueError):
        render_table([], [])
    with pytest.raises(ValueError):
        render_table(["a"], [["x", "y"]])


def test_format_cell():
    assert format_cell(True) == "yes"
    assert format_cell(1.23456) == "1.23"
    assert format_cell(1234.5) == "1,234"
    assert format_cell(0.0) == "0"
    assert format_cell("txt") == "txt"
    assert format_cell(7) == "7"


# -------------------------------------------------------------- time-series
def test_server_load_series_shapes():
    env = Environment()
    server = CloudServer(env)
    done = server.cpu.execute(5.0)
    env.run(until=done)
    series = server_load_series(server, 0.0, 10.0, 1.0)
    assert len(series["time"]) == len(series["cpu_percent"]) == 10
    assert series["cpu_percent"][0] > 0
    assert series["cpu_percent"][-1] == 0
    with pytest.raises(ValueError):
        server_load_series(server, 5.0, 5.0)


def test_sparkline_rendering():
    line = sparkline(np.array([0.0, 0.5, 1.0]), vmax=1.0)
    assert len(line) == 3
    assert line[0] == " " and line[-1] == "█"
    assert sparkline(np.array([])) == ""
    assert sparkline(np.zeros(4)) == "    "
