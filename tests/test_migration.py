"""Tests for live runtime migration between servers."""

import pytest

from repro.network import make_link
from repro.offload import OffloadRequest
from repro.platform import (
    MigrationError,
    MigrationManager,
    RattrapPlatform,
    VMCloudPlatform,
)
from repro.runtime.base import RuntimeState
from repro.sim import Environment
from repro.workloads import CHESS_GAME

MB = 1024 * 1024


def _warm_platform(env, platform_cls=RattrapPlatform):
    platform = platform_cls(env)
    link = make_link("lan-wifi")
    result = env.run(until=platform.submit(
        OffloadRequest(0, "d0", "chess", CHESS_GAME), link))
    return platform, platform.db.get(result.executed_on), link


def test_migration_manager_validation():
    with pytest.raises(ValueError):
        MigrationManager(backbone_bw_mbps=0)
    with pytest.raises(ValueError):
        MigrationManager(dirty_rate=1.0)
    with pytest.raises(ValueError):
        MigrationManager(max_precopy_rounds=0)


def test_container_migration_end_to_end():
    env = Environment()
    src, record, link = _warm_platform(env)
    dst = RattrapPlatform(env)
    manager = MigrationManager()
    report = env.run(until=env.process(manager.migrate(record, src, dst)))

    assert report.kind == "cloud-android-container"
    assert report.downtime_s < report.total_time_s
    assert record.runtime.state is RuntimeState.STOPPED
    # Destination serves, warm, with the source's apps.
    new_record = dst.db.get(report.new_cid)
    assert new_record.runtime.is_ready
    assert new_record.runtime.has_app("chess")
    assert new_record.owner_device == "d0"
    # Warehouse affinity follows the code.
    assert report.new_cid in dst.warehouse.containers_for("chess")
    # Source resources released, destination reserved.
    assert src.server.memory.reserved_mb == 0
    assert dst.server.memory.reserved_mb == 96.0


def test_migrated_container_serves_requests_warm():
    env = Environment()
    src, record, link = _warm_platform(env)
    dst = RattrapPlatform(env)
    # The destination needs the code preserved to skip re-upload.
    dst.warehouse.store("chess", int(CHESS_GAME.code_size_kb * 1024), now=env.now)
    manager = MigrationManager()
    report = env.run(until=env.process(manager.migrate(record, src, dst)))
    result = env.run(until=dst.submit(
        OffloadRequest(1, "d0", "chess", CHESS_GAME, seq_on_device=1), link))
    assert result.executed_on == report.new_cid
    assert result.code_cache_hit
    from repro.offload import Phase

    # Warm dispatch + first-sight access analysis only: no cold boot.
    assert result.phase(Phase.PREPARATION) < 0.1


def test_vm_migration_much_heavier_than_container():
    env = Environment()
    src_c, rec_c, _ = _warm_platform(env)
    dst_c = RattrapPlatform(env)
    manager = MigrationManager()
    c_report = env.run(until=env.process(manager.migrate(rec_c, src_c, dst_c)))

    env2 = Environment()
    src_v, rec_v, _ = _warm_platform(env2, VMCloudPlatform)
    dst_v = VMCloudPlatform(env2)
    v_report = env2.run(until=env2.process(manager.migrate(rec_v, src_v, dst_v)))

    assert v_report.transferred_bytes > c_report.transferred_bytes * 4
    assert v_report.total_time_s > c_report.total_time_s * 3
    # Both downtimes stay in the tens-of-milliseconds band.
    assert c_report.downtime_s < 0.05 and v_report.downtime_s < 0.05


def test_vm_migration_without_shared_storage_ships_disk():
    env = Environment()
    src, record, _ = _warm_platform(env, VMCloudPlatform)
    dst = VMCloudPlatform(env)
    manager = MigrationManager(shared_storage=False)
    report = env.run(until=env.process(manager.migrate(record, src, dst)))
    # 1.1 GB disk + 512 MB memory rounds.
    assert report.transferred_bytes > 1400 * MB


def test_container_private_top_cheap_even_without_shared_storage():
    env = Environment()
    src, record, _ = _warm_platform(env)
    dst = RattrapPlatform(env)
    manager = MigrationManager(shared_storage=False)
    report = env.run(until=env.process(manager.migrate(record, src, dst)))
    # Only the 7.1 MB private layer ships beyond memory state.
    assert report.transferred_bytes < 130 * MB


def test_migration_refuses_busy_runtime_unless_forced():
    env = Environment()
    platform = RattrapPlatform(env)
    link = make_link("lan-wifi")
    proc = platform.submit(OffloadRequest(0, "d0", "chess", CHESS_GAME), link)
    env.run(until=env.now + 2.5)  # mid-request
    record = platform.db.all_records()[0]
    assert record.active_requests == 1
    dst = RattrapPlatform(env)
    manager = MigrationManager()
    with pytest.raises(MigrationError, match="in flight"):
        env.run(until=env.process(manager.migrate(record, platform, dst)))
    env.run(until=proc)


def test_migration_requires_ready_runtime_and_same_env():
    env = Environment()
    platform = RattrapPlatform(env)
    cid = platform.db.new_cid()

    class FakeReq:
        device_id = "d0"
        app_id = "chess"
        profile = CHESS_GAME

    runtime = platform.make_runtime(cid, FakeReq())
    record = platform.db.register(runtime)
    manager = MigrationManager()
    dst = RattrapPlatform(env)
    with pytest.raises(MigrationError, match="READY"):
        env.run(until=env.process(manager.migrate(record, platform, dst)))
    other_env = Environment()
    dst2 = RattrapPlatform(other_env)
    with pytest.raises(MigrationError, match="environment"):
        env.run(until=env.process(manager.migrate(record, platform, dst2)))


def test_precopy_rounds_shrink_geometrically():
    env = Environment()
    src, record, _ = _warm_platform(env)
    dst = RattrapPlatform(env)
    manager = MigrationManager(dirty_rate=0.5, max_precopy_rounds=3,
                               stop_threshold_bytes=1 * MB)
    report = env.run(until=env.process(manager.migrate(record, src, dst)))
    assert report.precopy_rounds == 3
    # 96 + 48 + 24 MB precopy + 12 MB residual (+ kernel state).
    assert report.transferred_bytes == pytest.approx(180 * MB, rel=0.02)
