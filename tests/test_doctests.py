"""Run the doctest examples embedded in docstrings.

Keeps the documentation honest: every example a reader might paste
must actually work.
"""

import doctest

import pytest

import repro
import repro.network.scenarios
import repro.sim.core
import repro.sim.debug
import repro.sim.rng
import repro.sim.shard

MODULES = [
    repro,
    repro.sim.core,
    repro.sim.rng,
    repro.sim.debug,
    repro.sim.shard,
    repro.network.scenarios,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
