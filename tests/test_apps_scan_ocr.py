"""Tests for the virus scanner (Aho-Corasick) and the OCR pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    AhoCorasick,
    OcrEngine,
    Signature,
    SignatureDatabase,
    VirusScanner,
    otsu_threshold,
    render_text,
    segment_columns,
)


# ------------------------------------------------------------ Aho-Corasick
def test_ac_finds_all_overlapping_matches():
    ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    hits = ac.search(b"ushers")
    found = {(end, ac.patterns[idx]) for end, idx in hits}
    assert found == {(4, b"she"), (4, b"he"), (6, b"hers")}


def test_ac_no_match():
    ac = AhoCorasick([b"xyz"])
    assert ac.search(b"abcabcabc") == []


def test_ac_match_at_boundaries():
    ac = AhoCorasick([b"ab"])
    hits = ac.search(b"abzzab")
    assert [end for end, _ in hits] == [2, 6]


def test_ac_repeated_pattern_instances():
    ac = AhoCorasick([b"aa"])
    hits = ac.search(b"aaaa")
    assert [end for end, _ in hits] == [2, 3, 4]


def test_ac_validation():
    with pytest.raises(ValueError):
        AhoCorasick([])
    with pytest.raises(ValueError):
        AhoCorasick([b""])


def test_ac_binary_patterns():
    ac = AhoCorasick([bytes([0, 255, 0]), bytes([1, 2, 3])])
    data = bytes([9, 0, 255, 0, 1, 2, 3])
    assert len(ac.search(data)) == 2


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=8, unique=True),
    st.binary(max_size=200),
)
def test_ac_matches_naive_search(patterns, text):
    ac = AhoCorasick(patterns)
    got = sorted(ac.search(text))
    expected = sorted(
        (i + len(p), idx)
        for idx, p in enumerate(patterns)
        for i in range(len(text) - len(p) + 1)
        if text[i : i + len(p)] == p
    )
    assert got == expected


# ----------------------------------------------------------------- scanner
def test_signature_validation():
    with pytest.raises(ValueError):
        Signature(name="x", pattern=b"")


def test_database_generation_deterministic():
    a = SignatureDatabase.generate(count=50, seed=9)
    b = SignatureDatabase.generate(count=50, seed=9)
    assert [s.pattern for s in a.signatures] == [s.pattern for s in b.signatures]
    assert len(a) == 50


def test_database_validation():
    with pytest.raises(ValueError):
        SignatureDatabase([])
    with pytest.raises(ValueError):
        SignatureDatabase.generate(count=0)
    sig = Signature("dup", b"abc")
    with pytest.raises(ValueError):
        SignatureDatabase([sig, Signature("dup", b"def")])


def test_scanner_detects_implanted_signature():
    db = SignatureDatabase.generate(count=100, seed=1)
    scanner = VirusScanner(db)
    rng = np.random.default_rng(2)
    clean = bytes(rng.integers(0, 256, size=50_000, dtype=np.uint8))
    report = scanner.scan("clean.bin", clean)
    infected = scanner.implant(clean, signature_index=7, offset=12_345)
    report2 = scanner.scan("infected.bin", infected)
    assert report2.infected
    assert ("SIG-00007" in {name for name, _ in report2.detections})
    # Clean data may rarely contain a random 8-byte signature; the
    # implanted one must add at least one detection.
    assert len(report2.detections) >= len(report.detections) + 1


def test_scanner_counters_accumulate():
    db = SignatureDatabase.generate(count=10, seed=3)
    scanner = VirusScanner(db)
    scanner.scan("a", b"\x00" * 1000)
    scanner.scan("b", b"\x00" * 500)
    assert scanner.total_scanned == 1500


def test_scanner_implant_bounds():
    db = SignatureDatabase.generate(count=5, seed=0)
    scanner = VirusScanner(db)
    with pytest.raises(ValueError):
        scanner.implant(b"tiny", 0, 0)


# --------------------------------------------------------------------- OCR
def test_render_text_shapes_and_values():
    img = render_text("AB", scale=2)
    assert img.ndim == 2
    assert set(np.unique(img)) <= {0.0, 1.0}
    with pytest.raises(ValueError):
        render_text("é")
    with pytest.raises(ValueError):
        render_text("A", scale=0)


def test_otsu_separates_bimodal():
    img = np.concatenate([np.full(500, 0.1), np.full(500, 0.9)])
    t = otsu_threshold(img.reshape(20, 50))
    assert 0.2 < t < 0.8


def test_otsu_validation():
    with pytest.raises(ValueError):
        otsu_threshold(np.empty((0,)))


def test_segment_columns_counts_glyphs():
    img = render_text("ABC", scale=2)
    binary = (img > 0.5).astype(float)
    assert len(segment_columns(binary)) == 3
    with pytest.raises(ValueError):
        segment_columns(np.zeros(5))


def test_ocr_clean_roundtrip():
    eng = OcrEngine()
    for text in ("HELLO", "IPDPS 2017", "RATTRAP", "0123456789"):
        img = render_text(text, scale=3)
        assert eng.recognize(img).text == text


def test_ocr_scale_invariance():
    eng = OcrEngine()
    for scale in (1, 2, 4, 6):
        img = render_text("SCALE", scale=scale)
        assert eng.recognize(img).text == "SCALE"


def test_ocr_noise_tolerance():
    eng = OcrEngine()
    img = render_text("NOISY TEXT", scale=4, noise_sigma=0.15, seed=5)
    res = eng.recognize(img)
    assert res.text == "NOISY TEXT"
    assert res.mean_confidence > 0.7


def test_ocr_degrades_gracefully_under_heavy_noise():
    eng = OcrEngine()
    img = render_text("ABC", scale=3, noise_sigma=0.45, seed=1)
    res = eng.recognize(img)  # must not crash
    assert isinstance(res.text, str)


def test_ocr_empty_image():
    eng = OcrEngine()
    res = eng.recognize(np.zeros((20, 50)))
    assert res.text == ""
    assert res.mean_confidence == 0.0


@settings(max_examples=20, deadline=None)
@given(st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", min_size=1,
               max_size=8))
def test_ocr_property_clean_recognition(text):
    eng = OcrEngine()
    assert eng.recognize(render_text(text, scale=3)).text == text


# ------------------------------------------------------------ streaming scan
def test_stream_matcher_finds_boundary_straddling_matches():
    from repro.apps import StreamMatcher

    ac = AhoCorasick([b"SPLIT"])
    matcher = ac.matcher()
    hits = matcher.feed(b"xxSPL")
    assert hits == []
    hits = matcher.feed(b"ITyy")
    assert hits == [(7, 0)]  # absolute offset across the boundary


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=5), min_size=1, max_size=5, unique=True),
    st.binary(min_size=0, max_size=300),
    st.integers(1, 64),
)
def test_stream_scan_equals_whole_scan(patterns, data, chunk_size):
    ac = AhoCorasick(patterns)
    whole = sorted(ac.search(data))
    matcher = ac.matcher()
    chunked = []
    for i in range(0, len(data), chunk_size):
        chunked.extend(matcher.feed(data[i : i + chunk_size]))
    assert sorted(chunked) == whole


def test_scanner_scan_stream_detects_across_chunks():
    db = SignatureDatabase.generate(count=50, seed=4)
    scanner = VirusScanner(db)
    rng = np.random.default_rng(5)
    data = bytes(rng.integers(0, 256, size=64 * 1024, dtype=np.uint8))
    infected = scanner.implant(data, signature_index=3, offset=32_760)
    # Chunk boundary at 32 768 slices straight through the signature.
    chunks = [infected[i : i + 32_768] for i in range(0, len(infected), 32_768)]
    report = scanner.scan_stream("stream.bin", chunks)
    assert "SIG-00003" in {name for name, _ in report.detections}
    assert report.scanned_bytes == len(infected)


def test_scan_stream_matches_scan_exactly():
    db = SignatureDatabase.generate(count=30, seed=6)
    a, b = VirusScanner(db), VirusScanner(db)
    rng = np.random.default_rng(7)
    data = bytes(rng.integers(0, 256, size=20_000, dtype=np.uint8))
    data = a.implant(data, 1, 5_000)
    whole = a.scan("x", data)
    chunked = b.scan_stream("x", [data[i : i + 777] for i in range(0, len(data), 777)])
    assert sorted(whole.detections) == sorted(chunked.detections)


# -------------------------------------------------------------- multi-line
def test_render_document_and_segment_rows():
    from repro.apps import render_document, segment_rows

    page = render_document(["AB", "CD", "EF"], scale=2)
    binary = (page > 0.5).astype(float)
    assert len(segment_rows(binary)) == 3
    with pytest.raises(ValueError):
        render_document([])
    with pytest.raises(ValueError):
        segment_rows(np.zeros(5))


def test_recognize_document_multiline():
    from repro.apps import render_document

    eng = OcrEngine()
    lines = ["HELLO WORLD", "RATTRAP IPDPS", "2017"]
    page = render_document(lines, scale=3, noise_sigma=0.05, seed=2)
    result = eng.recognize_document(page)
    assert result.text.split("\n") == lines
    assert result.mean_confidence > 0.8


def test_recognize_document_empty_page():
    eng = OcrEngine()
    result = eng.recognize_document(np.zeros((40, 80)))
    assert result.text == ""


# -------------------------------------------------------------- DB format
def test_signature_db_roundtrip():
    db = SignatureDatabase.generate(count=20, seed=2)
    text = db.dumps()
    db2 = SignatureDatabase.loads(text)
    assert [s.name for s in db2.signatures] == [s.name for s in db.signatures]
    assert [s.pattern for s in db2.signatures] == [s.pattern for s in db.signatures]


def test_signature_db_parse_comments_and_errors():
    db = SignatureDatabase.loads(
        "# virus db v1\n\nEICAR-TEST=58354f21\nWORM-A=deadbeef\n"
    )
    assert len(db) == 2
    assert db.signatures[0].pattern == bytes.fromhex("58354f21")
    with pytest.raises(ValueError, match="NAME=HEX"):
        SignatureDatabase.loads("garbage line")
    with pytest.raises(ValueError, match="bad hex"):
        SignatureDatabase.loads("X=zz")


def test_loaded_db_scans_like_original():
    db = SignatureDatabase.generate(count=10, seed=5)
    reloaded = SignatureDatabase.loads(db.dumps())
    data = VirusScanner(db).implant(b"\x00" * 5000, 3, 100)
    a = VirusScanner(db).scan("x", data)
    b = VirusScanner(reloaded).scan("x", data)
    assert sorted(a.detections) == sorted(b.detections)


# ---------------------------------------------------------- accuracy eval
def test_evaluate_accuracy_degrades_with_noise():
    from repro.apps import evaluate_accuracy

    eng = OcrEngine()
    corpus = ["HELLO WORLD", "IPDPS 2017", "RATTRAP CLOUD"]
    clean = evaluate_accuracy(eng, corpus, noise_sigma=0.0)
    noisy = evaluate_accuracy(eng, corpus, noise_sigma=0.35, seed=3)
    assert clean == 1.0
    assert noisy < clean
    assert 0.0 <= noisy <= 1.0
    with pytest.raises(ValueError):
        evaluate_accuracy(eng, [])
