"""Tests for the container-image registry and lazy/eager pulls."""

import pytest

from repro.hostos import CloudServer
from repro.platform import (
    ContainerImage,
    ImageLayer,
    ImagePuller,
    ImageRegistry,
    SLACKER_STARTUP_FRACTION,
    cac_image,
)
from repro.sim import Environment

MB = 1024 * 1024


def _image(name="app", tag="v1", sizes=(100 * MB, 10 * MB)):
    layers = tuple(
        ImageLayer(digest=f"sha256:{name}-{i}", size_bytes=s, description=f"layer {i}")
        for i, s in enumerate(sizes)
    )
    return ContainerImage(name, tag, layers)


# ------------------------------------------------------------------- models
def test_layer_validation():
    with pytest.raises(ValueError):
        ImageLayer(digest="", size_bytes=1)
    with pytest.raises(ValueError):
        ImageLayer(digest="d", size_bytes=-1)


def test_image_validation():
    with pytest.raises(ValueError):
        ContainerImage("x", "v1", ())
    layer = ImageLayer("sha256:a", 10)
    with pytest.raises(ValueError):
        ContainerImage("x", "v1", (layer, layer))


def test_image_totals_and_reference():
    img = _image()
    assert img.reference == "app:v1"
    assert img.total_bytes == 110 * MB


def test_cac_images_match_table1_scale():
    opt = cac_image(optimized=True)
    non = cac_image(optimized=False)
    assert opt.total_bytes < 300 * MB
    assert non.total_bytes > 1000 * MB
    # Both variants share the offload-agent layer (content addressing).
    opt_digests = {l.digest for l in opt.layers}
    non_digests = {l.digest for l in non.layers}
    assert opt_digests & non_digests


# ----------------------------------------------------------------- registry
def test_registry_push_and_manifest():
    reg = ImageRegistry()
    img = _image()
    reg.push(img)
    assert reg.has_image("app:v1")
    assert reg.manifest("app:v1") is img
    assert reg.images() == ["app:v1"]
    with pytest.raises(ValueError):
        reg.push(img)
    with pytest.raises(KeyError):
        reg.manifest("ghost:v9")


def test_registry_dedups_shared_layers():
    reg = ImageRegistry()
    shared = ImageLayer("sha256:base", 200 * MB)
    reg.push(ContainerImage("a", "v1", (shared, ImageLayer("sha256:a1", 5 * MB))))
    reg.push(ContainerImage("b", "v1", (shared, ImageLayer("sha256:b1", 7 * MB))))
    assert reg.stored_bytes == (200 + 5 + 7) * MB


def test_registry_digest_collision_rejected():
    reg = ImageRegistry()
    reg.push(ContainerImage("a", "v1", (ImageLayer("sha256:x", 10),)))
    with pytest.raises(ValueError, match="collision"):
        reg.push(ContainerImage("b", "v1", (ImageLayer("sha256:x", 20),)))


# -------------------------------------------------------------------- pulls
def _setup():
    env = Environment()
    server = CloudServer(env)
    reg = ImageRegistry()
    reg.push(cac_image(optimized=True))
    reg.push(cac_image(optimized=False))
    puller = ImagePuller(server, reg, backbone_bw_mbps=1000.0)
    return env, server, reg, puller


def test_eager_pull_fetches_everything():
    env, server, reg, puller = _setup()
    report = env.run(until=env.process(puller.pull("rattrap/cac:optimized")))
    img = reg.manifest("rattrap/cac:optimized")
    assert report.fetched_bytes == img.total_bytes
    assert report.deduplicated_bytes == 0
    assert report.time_to_ready_s > 1.0  # ~281 MB over 1 Gbps + disk write
    assert server.disk.bytes_stored == img.total_bytes


def test_second_pull_deduplicates():
    env, server, reg, puller = _setup()
    env.run(until=env.process(puller.pull("rattrap/cac:optimized")))
    report = env.run(until=env.process(puller.pull("rattrap/cac:optimized")))
    assert report.fetched_bytes == 0
    assert report.deduplicated_bytes == reg.manifest("rattrap/cac:optimized").total_bytes
    assert report.time_to_ready_s == pytest.approx(0.0)


def test_cross_image_layer_dedup():
    env, server, reg, puller = _setup()
    env.run(until=env.process(puller.pull("rattrap/cac:non-optimized")))
    report = env.run(until=env.process(puller.pull("rattrap/cac:optimized")))
    # The shared offload-agent layer is already local.
    assert report.deduplicated_bytes > 0


def test_lazy_pull_ready_much_sooner():
    env1, _, _, eager = _setup()
    eager_report = env1.run(until=env1.process(
        eager.pull("rattrap/cac:non-optimized", mode="eager")))
    env2, server2, _, lazy = _setup()
    lazy_report = env2.run(until=env2.process(
        lazy.pull("rattrap/cac:non-optimized", mode="lazy")))
    # Slacker claim: ready after ~6.4 % of the bytes.
    assert lazy_report.time_to_ready_s < eager_report.time_to_ready_s * 0.2
    assert lazy_report.fetched_bytes == pytest.approx(
        eager_report.fetched_bytes * SLACKER_STARTUP_FRACTION, rel=0.01
    )
    # The background stream eventually lands the rest on disk.
    env2.run()
    total = lazy_report.fetched_bytes + lazy_report.background_bytes
    assert server2.disk.bytes_stored >= total


def test_lazy_pull_registers_layers_after_background():
    env, server, reg, puller = _setup()
    report = env.run(until=env.process(
        puller.pull("rattrap/cac:optimized", mode="lazy")))
    assert report.background_bytes > 0
    env.run()  # let the background fetch finish
    img = reg.manifest("rattrap/cac:optimized")
    assert all(puller.has_layer(l.digest) for l in img.layers)


def test_pull_validation():
    env, server, reg, puller = _setup()
    with pytest.raises(ValueError):
        env.run(until=env.process(puller.pull("rattrap/cac:optimized", mode="warp")))
    with pytest.raises(ValueError):
        env.run(until=env.process(
            puller.pull("rattrap/cac:optimized", startup_fraction=0.0, mode="lazy")))
    with pytest.raises(ValueError):
        ImagePuller(server, reg, backbone_bw_mbps=0)


def test_pull_counts():
    env, server, reg, puller = _setup()
    env.run(until=env.process(puller.pull("rattrap/cac:optimized")))
    assert reg.pull_count == 1
