"""Tests for LiveLab-style trace generation and replay."""

import numpy as np
import pytest

from repro.experiments.common import build_platform
from repro.network import make_link
from repro.sim import Environment
from repro.traces import (
    AccessTrace,
    LiveLabConfig,
    TraceRecord,
    generate_livelab_trace,
    replay_trace,
    trace_to_plans,
)
from repro.workloads import CHESS_GAME, LINPACK


# ------------------------------------------------------------------ records
def test_trace_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(time_s=-1.0, user_id="u", app_id="a", session_id=1)


def test_config_validation():
    with pytest.raises(ValueError):
        LiveLabConfig(users=0)
    with pytest.raises(ValueError):
        LiveLabConfig(days=0)
    with pytest.raises(ValueError):
        LiveLabConfig(think_mean_s=0)


# --------------------------------------------------------------- generation
def test_generation_deterministic():
    a = generate_livelab_trace(seed=4)
    b = generate_livelab_trace(seed=4)
    assert [(r.time_s, r.user_id) for r in a] == [(r.time_s, r.user_id) for r in b]


def test_generation_seed_sensitivity():
    a = generate_livelab_trace(seed=1)
    b = generate_livelab_trace(seed=2)
    assert [r.time_s for r in a] != [r.time_s for r in b]


def test_generation_respects_user_count():
    trace = generate_livelab_trace(LiveLabConfig(users=3), seed=0)
    assert len(trace.users()) == 3


def test_generation_multiple_apps():
    trace = generate_livelab_trace(apps=("chess", "ocr"), seed=0)
    assert set(trace.apps()) <= {"chess", "ocr"}
    assert len(trace.apps()) == 2  # both appear in a day of sessions


def test_generation_validation():
    with pytest.raises(ValueError):
        generate_livelab_trace(apps=())
    with pytest.raises(ValueError):
        generate_livelab_trace(LiveLabConfig(diurnal=[1.0] * 10))


def test_trace_records_sorted_by_time():
    trace = generate_livelab_trace(seed=0)
    times = [r.time_s for r in trace]
    assert times == sorted(times)


def test_trace_sessions_have_bursty_structure():
    trace = generate_livelab_trace(seed=0)
    gaps = trace.inter_arrival_times()
    # Bursty: many short in-session gaps AND some long inter-session gaps.
    assert np.median(gaps) < 120.0
    assert gaps.max() > 600.0
    # Roughly one in ten requests starts a session (mean session ~10).
    assert 0.05 < trace.session_start_fraction() < 0.25


def test_trace_filters():
    trace = generate_livelab_trace(apps=("chess", "ocr"), seed=3)
    chess_only = trace.for_app("chess")
    assert all(r.app_id == "chess" for r in chess_only)
    u0 = trace.for_user("user-0")
    assert all(r.user_id == "user-0" for r in u0)


# ------------------------------------------------------------------- replay
def test_trace_to_plans_structure():
    trace = generate_livelab_trace(seed=5)
    plans = trace_to_plans(trace, CHESS_GAME, seed=5)
    assert len(plans) == len(trace)
    rids = [p.request.request_id for p in plans]
    assert rids == sorted(set(rids))
    # Sequence numbers are per-user and increasing.
    per_user = {}
    for p in plans:
        prev = per_user.get(p.device_id, -1)
        assert p.request.seq_on_device == prev + 1
        per_user[p.device_id] = p.request.seq_on_device


def test_trace_to_plans_work_scale_mean_one():
    trace = generate_livelab_trace(seed=5)
    plans = trace_to_plans(trace, CHESS_GAME, work_sigma=0.3, seed=5)
    scales = np.array([p.request.work_scale for p in plans])
    assert scales.std() > 0.1
    assert scales.mean() == pytest.approx(1.0, abs=0.1)
    flat = trace_to_plans(trace, CHESS_GAME, work_sigma=0.0)
    assert all(p.request.work_scale == 1.0 for p in flat)


def test_trace_to_plans_time_scale():
    trace = generate_livelab_trace(seed=5)
    full = trace_to_plans(trace, CHESS_GAME)
    half = trace_to_plans(trace, CHESS_GAME, time_scale=0.5)
    assert half[-1].time_s == pytest.approx(full[-1].time_s * 0.5)
    with pytest.raises(ValueError):
        trace_to_plans(trace, CHESS_GAME, time_scale=0)
    with pytest.raises(ValueError):
        trace_to_plans(trace, CHESS_GAME, work_sigma=-1)


def test_replay_trace_reaps_idle_runtimes():
    trace = generate_livelab_trace(LiveLabConfig(users=2, sessions_per_day=6), seed=9)
    env = Environment()
    platform = build_platform(env, "rattrap")
    plans = trace_to_plans(trace, CHESS_GAME, seed=9)
    links = {u: make_link("lan-wifi") for u in trace.users()}
    results = replay_trace(env, platform, plans, links, idle_timeout_s=60.0)
    assert len(results) == len(plans)
    # Idle reclamation forced more cold boots than the 2 devices alone.
    assert platform.dispatcher.cold_boots > 2


def test_replay_trace_validation():
    trace = generate_livelab_trace(seed=0)
    env = Environment()
    platform = build_platform(env, "rattrap")
    plans = trace_to_plans(trace, CHESS_GAME)
    with pytest.raises(ValueError, match="no link"):
        replay_trace(env, platform, plans, links={})
    with pytest.raises(ValueError, match="empty"):
        replay_trace(env, platform, [], links={})


def test_replay_trace_wrong_app_yields_no_plans():
    trace = generate_livelab_trace(apps=("chess",), seed=0)
    assert trace_to_plans(trace, LINPACK) == []
