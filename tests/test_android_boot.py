"""Tests for boot sequences and the service registry.

Table I calibration: VM 28.72 s, CAC(non-opt) 6.80 s, CAC(opt) 1.75 s.
"""

import pytest

from repro.android import (
    FULL_INIT_SERVICES,
    OFFLOAD_INIT_SERVICES,
    BootSequence,
    BootStage,
    ServiceRegistry,
    container_boot_sequence,
    device_boot_sequence,
    init_userspace_time,
    vm_boot_sequence,
)
from repro.hostos import CloudServer
from repro.sim import Environment


# ----------------------------------------------------------------- services
def test_init_userspace_times_calibrated():
    assert init_userspace_time(FULL_INIT_SERVICES) == pytest.approx(5.90)
    assert init_userspace_time(OFFLOAD_INIT_SERVICES) == pytest.approx(1.20)


def test_init_userspace_unknown_service():
    with pytest.raises(KeyError):
        init_userspace_time(frozenset({"ghost_service"}))


def test_service_registry_running_and_stop():
    reg = ServiceRegistry(OFFLOAD_INIT_SERVICES)
    assert reg.is_running("netd")
    assert not reg.is_running("surfaceflinger")
    reg.stop("netd")
    assert not reg.is_running("netd")
    with pytest.raises(KeyError):
        reg.stop("netd")


def test_interface_calls_real_service():
    reg = ServiceRegistry(FULL_INIT_SERVICES)
    assert reg.call_interface("android.view.WindowManager") == "ok"


def test_interface_calls_faked_when_stripped():
    # Customized OS: no surfaceflinger, but WindowManager must not crash.
    reg = ServiceRegistry(OFFLOAD_INIT_SERVICES)
    assert reg.call_interface("android.view.WindowManager") == "faked"
    assert reg.call_interface("android.hardware.Camera") == "faked"
    assert reg.fake_calls["android.view.WindowManager"] == 1


def test_interface_crashes_without_fake():
    reg = ServiceRegistry(OFFLOAD_INIT_SERVICES, faked=frozenset())
    with pytest.raises(RuntimeError, match="crash"):
        reg.call_interface("android.telephony.TelephonyManager")


# -------------------------------------------------------------- boot stages
def test_boot_stage_validation():
    with pytest.raises(ValueError):
        BootStage("x", -1.0)
    with pytest.raises(ValueError):
        BootStage("x", 1.0, cpu_fraction=1.5)
    with pytest.raises(ValueError):
        BootSequence("empty", [])


def test_vm_boot_idle_duration_is_28_72():
    assert vm_boot_sequence().idle_duration_s == pytest.approx(28.72, abs=0.01)


def test_cac_nonoptimized_idle_duration_is_6_80():
    assert container_boot_sequence(optimized=False).idle_duration_s == pytest.approx(
        6.80, abs=0.01
    )


def test_cac_optimized_idle_duration_is_1_75():
    assert container_boot_sequence(optimized=True).idle_duration_s == pytest.approx(
        1.75, abs=0.01
    )


def test_boot_speedups_match_table1():
    vm = vm_boot_sequence().idle_duration_s
    cac = container_boot_sequence(optimized=False).idle_duration_s
    cac_opt = container_boot_sequence(optimized=True).idle_duration_s
    assert vm / cac == pytest.approx(4.22, abs=0.01)
    assert vm / cac_opt == pytest.approx(16.41, abs=0.02)


def test_boot_runs_on_idle_server_matches_idle_duration():
    env = Environment()
    server = CloudServer(env)
    seq = vm_boot_sequence()
    p = env.process(seq.run(server))
    timeline = env.run(until=p)
    assert env.now == pytest.approx(seq.idle_duration_s, rel=0.02)
    assert [name for name, _ in timeline] == [s.name for s in seq.stages]
    assert sum(t for _, t in timeline) == pytest.approx(env.now)


def test_container_boot_on_idle_server():
    env = Environment()
    server = CloudServer(env)
    seq = container_boot_sequence(optimized=True)
    env.run(until=env.process(seq.run(server)))
    assert env.now == pytest.approx(1.75, rel=0.05)


def test_concurrent_vm_boots_contend_on_disk():
    # Enough VMs booting together saturate the single HDD channel: the
    # slowest boots take longer than the idle 28.72 s.
    env = Environment()
    server = CloudServer(env)
    finish = {}

    def boot_one(env, i):
        yield env.process(vm_boot_sequence().run(server))
        finish[i] = env.now

    for i in range(20):
        env.process(boot_one(env, i))
    env.run()
    assert max(finish.values()) > 28.72
    assert min(finish.values()) >= 28.72 - 1e-9


def test_boot_generates_cpu_load():
    env = Environment()
    server = CloudServer(env)
    env.run(until=env.process(vm_boot_sequence().run(server)))
    # Mean CPU busy during boot must be visible (boot burns CPU).
    mean = server.cpu.utilization.mean_percent(0.0, env.now)
    assert mean > 0.5


def test_boot_generates_disk_reads():
    env = Environment()
    server = CloudServer(env)
    env.run(until=env.process(vm_boot_sequence().run(server)))
    assert server.disk.tracker.reads.total >= 90 * 1024 * 1024


def test_device_boot_slower_than_optimized_container():
    assert (
        device_boot_sequence().idle_duration_s
        > container_boot_sequence(optimized=True).idle_duration_s * 4
    )
