"""Tests for the benchmark regression gate (benchmarks/compare.py)."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks", "compare.py"),
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _payload(walls, schema=1, devices=None, hit_rate=None, local_fraction=None,
             epochs=None):
    rows = []
    for n, w in walls.items():
        row = {"name": n, "wall_s": w}
        if schema >= 2:
            row["p99_wall_s"] = w  # single-cell experiments: p99 == wall
        if schema >= 3:
            row["devices"] = devices
            row["devices_per_s"] = None if devices is None else devices / w
        if schema >= 4:
            row["cache_hit_rate"] = hit_rate
        if schema >= 5:
            row["local_fraction"] = local_fraction
        if schema >= 6:
            run, skipped = epochs if epochs is not None else (None, None)
            row["epochs_run"] = run
            row["epochs_skipped"] = skipped
        rows.append(row)
    return {"schema_version": schema, "experiments": rows}


def test_compare_flags_regressions_over_threshold():
    rows, regressions = bench_compare.compare(
        _payload({"fig9": 1.0, "fig10": 1.0}),
        _payload({"fig9": 1.30, "fig10": 1.10}),
        threshold=0.25,
        floor_s=0.25,
    )
    assert [r["name"] for r in regressions] == ["fig9"]
    assert len(rows) == 2
    assert regressions[0]["delta"] == pytest.approx(0.30)


def test_compare_noise_floor_skips_tiny_experiments():
    # +400% on a 10 ms experiment is scheduler jitter, not a regression.
    _, regressions = bench_compare.compare(
        _payload({"sec3e": 0.01}),
        _payload({"sec3e": 0.05}),
        threshold=0.25,
        floor_s=0.25,
    )
    assert regressions == []


def test_compare_speedups_never_flag():
    _, regressions = bench_compare.compare(
        _payload({"a": 2.0}), _payload({"a": 1.0})
    )
    assert regressions == []


def test_compare_ignores_experiments_missing_from_fresh():
    rows, regressions = bench_compare.compare(
        _payload({"a": 1.0, "b": 1.0}), _payload({"a": 1.0})
    )
    assert [r["name"] for r in rows] == ["a"]
    assert regressions == []


def test_compare_rejects_unknown_schema():
    bad = {"schema_version": 99, "experiments": []}
    with pytest.raises(ValueError, match="schema"):
        bench_compare.compare(bad, _payload({}))
    with pytest.raises(ValueError, match="schema"):
        bench_compare.compare(_payload({}), {"experiments": []})


def test_compare_reads_v1_baseline_against_v2_fresh():
    # A v1 baseline (no p99) still compares against a fresh v2 run; the
    # missing tail column surfaces as None, not an error.
    rows, regressions = bench_compare.compare(
        _payload({"fig9": 1.0}, schema=1),
        _payload({"fig9": 1.1}, schema=2),
    )
    assert rows[0]["base_p99_s"] is None
    assert rows[0]["fresh_p99_s"] == pytest.approx(1.1)
    assert regressions == []


def test_compare_carries_v2_p99_through():
    rows, _ = bench_compare.compare(
        _payload({"fig9": 1.0}, schema=2),
        _payload({"fig9": 1.0}, schema=2),
    )
    assert rows[0]["base_p99_s"] == pytest.approx(1.0)
    assert rows[0]["fresh_p99_s"] == pytest.approx(1.0)


def test_compare_carries_v3_device_throughput_through():
    # v3 baselines surface devices/s; a v2 baseline against a fresh v3
    # run leaves the base column None instead of erroring.
    rows, _ = bench_compare.compare(
        _payload({"scale": 2.0}, schema=3, devices=3500),
        _payload({"scale": 2.0}, schema=3, devices=3500),
    )
    assert rows[0]["base_dev_s"] == pytest.approx(1750.0)
    assert rows[0]["fresh_dev_s"] == pytest.approx(1750.0)
    rows, _ = bench_compare.compare(
        _payload({"scale": 2.0}, schema=2),
        _payload({"scale": 2.0}, schema=3, devices=3500),
    )
    assert rows[0]["base_dev_s"] is None
    assert rows[0]["fresh_dev_s"] == pytest.approx(1750.0)


def test_compare_carries_v4_hit_rate_through():
    # v4 baselines surface the cache hit rate; a v3 baseline against a
    # fresh v4 run leaves the base column None instead of erroring.
    rows, _ = bench_compare.compare(
        _payload({"cachebench": 2.0}, schema=4, hit_rate=0.6),
        _payload({"cachebench": 2.0}, schema=4, hit_rate=0.65),
    )
    assert rows[0]["base_hit"] == pytest.approx(0.6)
    assert rows[0]["fresh_hit"] == pytest.approx(0.65)
    rows, _ = bench_compare.compare(
        _payload({"cachebench": 2.0}, schema=3),
        _payload({"cachebench": 2.0}, schema=4, hit_rate=0.65),
    )
    assert rows[0]["base_hit"] is None
    assert rows[0]["fresh_hit"] == pytest.approx(0.65)


def test_compare_carries_v5_local_fraction_through():
    # v5 baselines surface the partition layer's local fraction; a v4
    # baseline against a fresh v5 run leaves the base column None.
    rows, _ = bench_compare.compare(
        _payload({"partition": 2.0}, schema=5, local_fraction=0.25),
        _payload({"partition": 2.0}, schema=5, local_fraction=0.30),
    )
    assert rows[0]["base_loc"] == pytest.approx(0.25)
    assert rows[0]["fresh_loc"] == pytest.approx(0.30)
    rows, _ = bench_compare.compare(
        _payload({"partition": 2.0}, schema=4),
        _payload({"partition": 2.0}, schema=5, local_fraction=0.30),
    )
    assert rows[0]["base_loc"] is None
    assert rows[0]["fresh_loc"] == pytest.approx(0.30)


def test_compare_carries_v6_epoch_counters_through():
    # v6 baselines surface the sharded sync-engine counters; a v5
    # baseline against a fresh v6 run leaves the base column None.
    rows, _ = bench_compare.compare(
        _payload({"megascale": 2.0}, schema=6, epochs=(300, 900)),
        _payload({"megascale": 2.0}, schema=6, epochs=(310, 890)),
    )
    assert rows[0]["base_epochs"] == (300, 900)
    assert rows[0]["fresh_epochs"] == (310, 890)
    rows, _ = bench_compare.compare(
        _payload({"megascale": 2.0}, schema=5),
        _payload({"megascale": 2.0}, schema=6, epochs=(310, 890)),
    )
    assert rows[0]["base_epochs"] == (None, None)
    assert rows[0]["fresh_epochs"] == (310, 890)


def test_cli_compares_saved_runs(tmp_path, capsys):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(_payload({"a": 1.0})))
    fresh.write_text(json.dumps(_payload({"a": 2.0})))
    rc = bench_compare.main(["--baseline", str(base), "--fresh", str(fresh)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out

    fresh.write_text(json.dumps(_payload({"a": 1.1})))
    rc = bench_compare.main(["--baseline", str(base), "--fresh", str(fresh)])
    assert rc == 0
    assert "OK" in capsys.readouterr().out


def test_cli_missing_baseline_is_an_error(tmp_path):
    rc = bench_compare.main(["--baseline", str(tmp_path / "nope.json"),
                             "--fresh", str(tmp_path / "nope.json")])
    assert rc == 2
