from setuptools import setup

# Configuration lives in pyproject.toml; this shim exists so editable
# installs work in offline environments without the `wheel` package.
setup()
