PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench experiments chaos

test:
	$(PYTHON) -m pytest -x -q

## Run the opt-in fault-injection experiment (not part of the default
## suite; see docs/ROBUSTNESS.md).
chaos:
	$(PYTHON) -m repro.experiments.runner chaos

## Run every experiment and write BENCH_experiments.json with
## per-cell and per-experiment wall-clock (JOBS=N to parallelize).
JOBS ?= 0
bench:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS) --bench

experiments:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS)
