PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-compare experiments chaos scale predictive

test:
	$(PYTHON) -m pytest -x -q

## Run the opt-in fault-injection experiment (not part of the default
## suite; see docs/ROBUSTNESS.md).
chaos:
	$(PYTHON) -m repro.experiments.runner chaos

## Run the opt-in 1k-10k device scale ramp (see docs/PERFORMANCE.md).
## PREDICTIVE=1 runs the reactive-vs-predictive warm-pool comparison
## instead of the device ramp.
scale:
	$(PYTHON) -m repro.experiments.runner scale $(if $(PREDICTIVE),--predictive)

## Run the opt-in LiveLab-trace predictive-scheduling comparison
## (see docs/PERFORMANCE.md).
predictive:
	$(PYTHON) -m repro.experiments.runner predictive

## Run every experiment and write BENCH_experiments.json with
## per-cell and per-experiment wall-clock (JOBS=N to parallelize).
JOBS ?= 0
bench:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS) --bench

## Re-measure the default suite and diff against the committed
## BENCH_experiments.json; exits 1 on a >25 % per-experiment regression.
bench-compare:
	$(PYTHON) benchmarks/compare.py

experiments:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS)
