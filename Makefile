PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-compare experiments chaos abuse abuse-smoke \
	scale predictive megascale megascale-smoke megascale-ab \
	cachebench cachebench-smoke \
	partition partition-smoke

JOBS ?= 0

test:
	$(PYTHON) -m pytest -x -q

## Run the opt-in fault-injection experiment (not part of the default
## suite; see docs/ROBUSTNESS.md).
chaos:
	$(PYTHON) -m repro.experiments.runner chaos

## Run the opt-in hostile-tenant isolation scorecard (countermeasures
## off vs on per attack class; see docs/ROBUSTNESS.md).  The smoke
## variant is the cheap CI configuration.
abuse:
	$(PYTHON) -m repro.experiments.runner abuse --jobs $(JOBS)

abuse-smoke:
	$(PYTHON) -m repro.experiments.runner abuse --smoke --jobs $(JOBS)

## Run the opt-in 1k-10k device scale ramp (see docs/PERFORMANCE.md).
## PREDICTIVE=1 runs the reactive-vs-predictive warm-pool comparison
## instead of the device ramp; JOBS=N fans the ramp cells over N
## processes (identical output either way).
scale:
	$(PYTHON) -m repro.experiments.runner scale --jobs $(JOBS) $(if $(PREDICTIVE),--predictive)

## Run the opt-in LiveLab-trace predictive-scheduling comparison
## (see docs/PERFORMANCE.md).
predictive:
	$(PYTHON) -m repro.experiments.runner predictive

## Run the opt-in 1M-device sharded + mesoscale experiment
## (see docs/PERFORMANCE.md "Megascale").  JOBS=N runs one
## scatter-gather worker process per shard; the smoke variant is the
## cheap CI configuration (50k devices over 2 shards).
megascale:
	$(PYTHON) -m repro.experiments.runner megascale --jobs $(JOBS)

megascale-smoke:
	$(PYTHON) -m repro.experiments.runner megascale --smoke --jobs $(JOBS)

## A/B the sharded kernel's parallel path: the full megascale run
## serially, then again with JOBS worker processes (default: one per
## mega-cell shard).  Summaries are byte-identical by construction;
## compare the two mega-cell wall clocks (needs >= JOBS cores to show
## the scatter-gather speedup).
megascale-ab:
	$(PYTHON) -m repro.experiments.runner megascale --jobs 0
	$(PYTHON) -m repro.experiments.runner megascale --jobs $(if $(filter 0,$(JOBS)),8,$(JOBS))

## Run the opt-in compute-result cache benchmark: repeat-heavy and
## LiveLab-trace shapes, arms cache-off / node tier / cluster tier
## (see docs/PERFORMANCE.md "Computation reuse").  The smoke variant
## is the cheap CI configuration.
cachebench:
	$(PYTHON) -m repro.experiments.runner cachebench --jobs $(JOBS)

cachebench-smoke:
	$(PYTHON) -m repro.experiments.runner cachebench --smoke --jobs $(JOBS)

## Run the opt-in dynamic-partitioning benchmark: offload / local /
## adaptive decision arms across the four network scenarios (see
## docs/PERFORMANCE.md "Dynamic partitioning").  The smoke variant is
## the cheap CI configuration.
partition:
	$(PYTHON) -m repro.experiments.runner partition --jobs $(JOBS)

partition-smoke:
	$(PYTHON) -m repro.experiments.runner partition --smoke --jobs $(JOBS)

## Run every experiment plus the scale-family smoke configs and write
## BENCH_experiments.json with per-cell/per-experiment wall-clock and
## device throughput (JOBS=N to parallelize).
bench:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS) --bench --smoke \
		--extra scale --extra megascale --extra cachebench --extra partition

## Re-measure the default suite and diff against the committed
## BENCH_experiments.json; exits 1 on a >25 % per-experiment regression.
bench-compare:
	$(PYTHON) benchmarks/compare.py

experiments:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS)
