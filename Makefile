PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench experiments

test:
	$(PYTHON) -m pytest -x -q

## Run every experiment and write BENCH_experiments.json with
## per-cell and per-experiment wall-clock (JOBS=N to parallelize).
JOBS ?= 0
bench:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS) --bench

experiments:
	$(PYTHON) -m repro.experiments.runner --jobs $(JOBS)
